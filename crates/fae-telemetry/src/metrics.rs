//! The metrics registry: counters, gauges and fixed-bucket log-scale
//! histograms, all behind plain `String` names.
//!
//! The registry is deliberately zero-dependency (std collections only;
//! serde is used solely to snapshot it to JSON). Names follow a
//! dot-separated hierarchy — `scheduler.rate`, `replicator.sync_bytes`,
//! `faults.injected.device-loss` — documented in DESIGN.md §8.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets. Bucket `i` covers
/// `[2^(i + MIN_EXP), 2^(i + MIN_EXP + 1))`; the first and last buckets
/// additionally absorb underflow and overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent of the lower bound of bucket 0 (`2^-40 ≈ 9.1e-13`), chosen so
/// sub-nanosecond durations and multi-megasecond simulated times both
/// land inside the range.
pub const HISTOGRAM_MIN_EXP: i32 = -40;

/// A fixed-bucket log₂-scale histogram.
///
/// Observations are binned by `floor(log2(v))`; the bucket layout is
/// fixed at construction so histograms from different runs (or shards)
/// [`merge`](Histogram::merge) bucket-by-bucket without rebinning.
/// Non-positive and non-finite observations clamp into the underflow
/// bucket (0); values beyond the top bound clamp into the last bucket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket an observation falls into.
    pub fn bucket_index(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let exp = v.log2().floor() as i64 - HISTOGRAM_MIN_EXP as i64;
        exp.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// `[lower, upper)` value bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        let lo = 2f64.powi(HISTOGRAM_MIN_EXP + i as i32);
        (lo, lo * 2.0)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) of the observed values:
    /// walks the buckets to the one holding the ⌈q·count⌉-th observation
    /// and interpolates linearly inside it, clamped to the observed
    /// `[min, max]` so the log₂ bucket bounds never widen the estimate
    /// past real data. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let within = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * within;
                return est.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Merges another histogram into this one, bucket by bucket.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket layouts must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One completed span occurrence, aggregated by path.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Times this span path was entered.
    pub count: u64,
    /// Total real (host wall-clock) seconds across occurrences.
    pub real_s: f64,
    /// Total simulated seconds attributed across occurrences.
    pub sim_s: f64,
}

/// The registry: three name-keyed maps plus the span aggregate.
///
/// `BTreeMap` keeps snapshots deterministically ordered, so two runs with
/// the same metric activity serialize identically (modulo wall-clock
/// values).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name` (created at 0).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records an observation into the histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Records one completed span occurrence under `path`.
    pub fn span_record(&mut self, path: &str, real_s: f64, sim_s: f64) {
        let s = self.spans.entry(path.to_string()).or_default();
        s.count += 1;
        s.real_s += real_s;
        s.sim_s += sim_s;
    }

    /// Current counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram under `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The aggregated span stats under `path`.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// Merges another registry into this one (counters add, gauges take
    /// the other's value, histograms and spans merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.spans {
            let s = self.spans.entry(k.clone()).or_default();
            s.count += v.count;
            s.real_s += v.real_s;
            s.sim_s += v.sim_s;
        }
    }

    /// Snapshots the registry as a JSON value tree.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), serde_json::to_value(v));
        }
        let mut gauges = Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), serde_json::to_value(v));
        }
        let mut histograms = Map::new();
        for (k, h) in &self.histograms {
            // Sparse bucket encoding: only non-empty buckets, as
            // [index, lower_bound, count] triples.
            let buckets: Vec<Value> = h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    Value::Array(vec![
                        serde_json::to_value(&(i as u64)),
                        serde_json::to_value(&Histogram::bucket_bounds(i).0),
                        serde_json::to_value(&c),
                    ])
                })
                .collect();
            let mut m = Map::new();
            m.insert("count".into(), serde_json::to_value(&h.count));
            m.insert("sum".into(), serde_json::to_value(&h.sum));
            m.insert("mean".into(), serde_json::to_value(&h.mean()));
            m.insert("min".into(), serde_json::to_value(&h.min));
            m.insert("max".into(), serde_json::to_value(&h.max));
            m.insert("buckets".into(), Value::Array(buckets));
            histograms.insert(k.clone(), Value::Object(m));
        }
        let mut spans = Map::new();
        for (k, s) in &self.spans {
            let mut m = Map::new();
            m.insert("count".into(), serde_json::to_value(&s.count));
            m.insert("real_s".into(), serde_json::to_value(&s.real_s));
            m.insert("sim_s".into(), serde_json::to_value(&s.sim_s));
            spans.insert(k.clone(), Value::Object(m));
        }
        let mut root = Map::new();
        root.insert("counters".into(), Value::Object(counters));
        root.insert("gauges".into(), Value::Object(gauges));
        root.insert("histograms".into(), Value::Object(histograms));
        root.insert("spans".into(), Value::Object(spans));
        Value::Object(root)
    }

    /// Snapshots the registry in the Prometheus text exposition format
    /// (version 0.0.4). Dot-separated fae names map to underscore form
    /// (`net.nodes_lost` → `fae_net_nodes_lost`); histograms expose
    /// cumulative `_bucket{le=...}` series over the non-empty log₂
    /// buckets plus `_sum`/`_count`; spans expose `_count`, `_real
    /// _seconds` and `_sim_seconds` series. Output order is the maps'
    /// deterministic BTreeMap order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", prom_f64(*v)));
        }
        for (k, h) in &self.histograms {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let (_, hi) = Histogram::bucket_bounds(i);
                out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cumulative}\n", prom_f64(hi)));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", prom_f64(h.sum)));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        for (k, s) in &self.spans {
            let name = prom_name(k);
            out.push_str(&format!("# TYPE {name}_count counter\n{name}_count {}\n", s.count));
            out.push_str(&format!(
                "# TYPE {name}_real_seconds counter\n{name}_real_seconds {}\n",
                prom_f64(s.real_s)
            ));
            out.push_str(&format!(
                "# TYPE {name}_sim_seconds counter\n{name}_sim_seconds {}\n",
                prom_f64(s.sim_s)
            ));
        }
        out
    }
}

/// Maps a fae metric name to a valid Prometheus metric name: the `fae_`
/// namespace prefix, with every character outside `[a-zA-Z0-9_]`
/// (dots, dashes, slashes) folded to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("fae_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an f64 the way Prometheus expects (no exponent surprises for
/// integral values, `+Inf`/`-Inf`/`NaN` spellings).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_is_monotone_and_clamped_to_observations() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
        assert!(p50 >= h.min && p99 <= h.max, "quantiles clamped to [min, max]");
        // The log₂ buckets bound the error to one octave.
        assert!((0.25..=1.0).contains(&p50), "p50 of U(0,1] ≈ 0.5, got {p50}");
        assert!(p99 > 0.5, "p99 of U(0,1] must exceed the median, got {p99}");
    }

    #[test]
    fn quantile_of_singleton_is_the_value() {
        let mut h = Histogram::new();
        h.observe(0.125);
        assert_eq!(h.quantile(0.0), 0.125);
        assert_eq!(h.quantile(0.5), 0.125);
        assert_eq!(h.quantile(1.0), 0.125);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 1.0 = 2^0 → bucket -MIN_EXP; the lower bound is inclusive,
        // the upper bound exclusive.
        let one = (-HISTOGRAM_MIN_EXP) as usize;
        assert_eq!(Histogram::bucket_index(1.0), one);
        assert_eq!(Histogram::bucket_index(1.999), one);
        assert_eq!(Histogram::bucket_index(2.0), one + 1);
        assert_eq!(Histogram::bucket_index(0.5), one - 1);
        let (lo, hi) = Histogram::bucket_bounds(one);
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 2.0);
    }

    #[test]
    fn bucket_underflow_and_overflow_clamp() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(1e-300), 0);
        assert_eq!(Histogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn every_bucket_bound_maps_back_to_its_bucket() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, _hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of bucket {i}");
            // The bucket midpoint stays inside (probing one ulp under the
            // upper bound is not robust: log2 rounds it up to the bound).
            assert_eq!(Histogram::bucket_index(lo * 1.5), i, "midpoint of bucket {i}");
        }
    }

    #[test]
    fn observe_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        h.observe(1.0);
        h.observe(4.0);
        h.observe(0.25);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 5.25);
        assert_eq!(h.min, 0.25);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_bucket_by_bucket() {
        let mut a = Histogram::new();
        a.observe(1.0);
        a.observe(1.5);
        let mut b = Histogram::new();
        b.observe(1.0);
        b.observe(1024.0);
        a.merge(&b);
        assert_eq!(a.count, 4);
        let one = (-HISTOGRAM_MIN_EXP) as usize;
        assert_eq!(a.counts[one], 3);
        assert_eq!(a.counts[one + 10], 1);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 1024.0);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        r.observe("h", 1.0);
        r.span_record("pipeline/train", 0.5, 100.0);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(2.5));
        assert_eq!(r.histogram("h").unwrap().count, 1);
        assert_eq!(r.span("pipeline/train").unwrap().sim_s, 100.0);
    }

    #[test]
    fn registry_merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 7.0);
        b.observe("h", 2.0);
        b.span_record("s", 1.0, 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.histogram("h").unwrap().count, 2);
        assert_eq!(a.span("s").unwrap().count, 1);
    }

    #[test]
    fn prometheus_exposition_covers_all_kinds() {
        let mut r = MetricsRegistry::new();
        r.counter_add("net.joins", 2);
        r.gauge_set("scheduler.rate", 25.0);
        r.observe("serve.latency", 0.5);
        r.observe("serve.latency", 0.25);
        r.span_record("pipeline/train", 1.5, 100.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE fae_net_joins counter\nfae_net_joins 2\n"));
        assert!(text.contains("# TYPE fae_scheduler_rate gauge\nfae_scheduler_rate 25\n"));
        assert!(text.contains("# TYPE fae_serve_latency histogram\n"));
        assert!(text.contains("fae_serve_latency_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("fae_serve_latency_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("fae_serve_latency_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("fae_serve_latency_sum 0.75\n"));
        assert!(text.contains("fae_serve_latency_count 2\n"));
        assert!(text.contains("fae_pipeline_train_count 1\n"));
        assert!(text.contains("fae_pipeline_train_sim_seconds 100\n"));
        // No raw dots or slashes survive in metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad prom name in line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_exposition_is_deterministic() {
        let mut r = MetricsRegistry::new();
        r.counter_add("b", 1);
        r.counter_add("a", 1);
        let a = r.to_prometheus();
        let b = r.clone().to_prometheus();
        assert_eq!(a, b);
        assert!(a.find("fae_a").unwrap() < a.find("fae_b").unwrap());
    }

    #[test]
    fn json_snapshot_is_deterministically_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 1);
        r.observe("lat", 0.5);
        let text = serde_json::to_string(&r.to_json()).unwrap();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        assert!(text.contains("\"buckets\""));
    }
}
