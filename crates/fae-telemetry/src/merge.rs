//! Cross-node journal merging: N per-node JSONL streams in, one
//! globally-ordered stream out.
//!
//! Ordering rules (DESIGN.md §13): the coordinator's journal (node 0)
//! owns the simulated clock — its events are placed at the cumulative
//! per-phase total at the moment each event was emitted. Worker events
//! carry no simulated charge; they are anchored at the clock value of
//! the coordinator step they are tagged with. Ties break on
//! `(step, node_id, seq)`, and the sort is stable, so each node's own
//! emission order is always preserved.
//!
//! Merging is idempotent: events are identified by `(node_id, seq)` and
//! duplicated deliveries (retried ship batches, re-read journals,
//! overlapping files) collapse to one copy — the exactly-once property
//! the observability plane's tests gate on.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use crate::journal::{JournalEvent, TaggedEvent};

/// Tolerance for the per-phase time-accounting invariant, matching the
/// single-journal gate used since PR 1.
pub const INVARIANT_TOLERANCE: f64 = 1e-6;

/// What a merge did: how many events survived, how many duplicate
/// `(node_id, seq)` deliveries were collapsed, and which nodes appeared.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MergeStats {
    /// Events in the merged stream.
    pub total: usize,
    /// Duplicate deliveries dropped.
    pub duplicates: usize,
    /// Distinct originating node ids, ascending.
    pub nodes: Vec<u64>,
}

/// The step a journal event is anchored to on the coordinator clock.
fn step_of(event: &JournalEvent) -> u64 {
    match event {
        JournalEvent::RunStart { .. } | JournalEvent::ServeStart { .. } => 0,
        JournalEvent::Step { step, .. }
        | JournalEvent::Sync { step, .. }
        | JournalEvent::Charge { step, .. }
        | JournalEvent::Eval { step, .. }
        | JournalEvent::Fault { step, .. }
        | JournalEvent::Recovery { step, .. }
        | JournalEvent::NodeJoin { step, .. }
        | JournalEvent::NodeLost { step, .. }
        | JournalEvent::Reshard { step, .. }
        | JournalEvent::Mark { step, .. }
        | JournalEvent::Alert { step, .. } => *step,
        JournalEvent::RunEnd { steps, .. } => *steps,
        JournalEvent::ServeBatch { batch, .. } => *batch,
        JournalEvent::ServeEnd { .. } => u64::MAX,
    }
}

/// Merges N per-node streams into one globally-ordered, exactly-once
/// stream. Inputs may contain duplicates, overlap each other, or be
/// internally out of order — `(node_id, seq)` identity and the stable
/// clock sort repair all three.
pub fn merge_tagged(streams: &[Vec<TaggedEvent>]) -> (Vec<TaggedEvent>, MergeStats) {
    // Exactly-once: collapse on (node_id, seq), first delivery wins.
    // The BTreeMap simultaneously restores each node's seq order.
    let mut unique: BTreeMap<(u64, u64), TaggedEvent> = BTreeMap::new();
    let mut duplicates = 0usize;
    for stream in streams {
        for t in stream {
            match unique.entry((t.node_id, t.seq)) {
                Entry::Occupied(_) => duplicates += 1,
                Entry::Vacant(slot) => {
                    slot.insert(t.clone());
                }
            }
        }
    }

    // The coordinator clock: walk node 0 in seq order, recording the
    // cumulative simulated seconds *before* each event's own charge and
    // the clock at the start of each step.
    let mut clock = 0.0f64;
    let mut step_start: BTreeMap<u64, f64> = BTreeMap::new();
    let mut event_time: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for ((node, seq), t) in unique.iter() {
        if *node != 0 {
            continue;
        }
        step_start.entry(step_of(&t.event)).or_insert(clock);
        event_time.insert((*node, *seq), clock);
        if let Some(p) = t.event.phases() {
            clock += p.total();
        }
    }
    // Anchor every non-coordinator event at the start of its step (the
    // latest known coordinator step at or before it; before the first
    // known step → clock zero).
    let anchor = |step: u64| -> f64 {
        step_start.range(..=step).next_back().map(|(_, t)| *t).unwrap_or(0.0)
    };

    let mut merged: Vec<TaggedEvent> = unique.into_values().collect();
    let nodes = {
        let mut ns: Vec<u64> = merged.iter().map(|t| t.node_id).collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    };
    let key = |t: &TaggedEvent| -> (f64, u64, u64, u64) {
        let step = step_of(&t.event);
        let time = match event_time.get(&(t.node_id, t.seq)) {
            Some(tm) => *tm,
            None => anchor(step),
        };
        (time, step, t.node_id, t.seq)
    };
    merged.sort_by(|a, b| {
        let (ta, sa, na, qa) = key(a);
        let (tb, sb, nb, qb) = key(b);
        ta.partial_cmp(&tb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(sa.cmp(&sb))
            .then(na.cmp(&nb))
            .then(qa.cmp(&qb))
    });

    let stats = MergeStats { total: merged.len(), duplicates, nodes };
    (merged, stats)
}

/// Assigns every event in a (merged) stream its simulated clock value,
/// in seconds, by the same rules [`merge_tagged`] orders with: node-0
/// events sit at the cumulative phase total before their own charge,
/// worker events at the clock of the latest coordinator step at or
/// before their anchor step. Used by the merged trace exporter.
pub fn event_times(events: &[TaggedEvent]) -> Vec<f64> {
    let mut clock = 0.0f64;
    let mut step_start: BTreeMap<u64, f64> = BTreeMap::new();
    let mut times = vec![0.0f64; events.len()];
    for (i, t) in events.iter().enumerate() {
        if t.node_id != 0 {
            continue;
        }
        step_start.entry(step_of(&t.event)).or_insert(clock);
        times[i] = clock;
        if let Some(p) = t.event.phases() {
            clock += p.total();
        }
    }
    for (i, t) in events.iter().enumerate() {
        if t.node_id == 0 {
            continue;
        }
        times[i] =
            step_start.range(..=step_of(&t.event)).next_back().map(|(_, tm)| *tm).unwrap_or(0.0);
    }
    times
}

/// The per-phase time-accounting invariant, extended across nodes: each
/// node's charged seconds, the global sum, and the run's own report.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedInvariant {
    /// `(node_id, charged simulated seconds)` per originating node.
    pub per_node: Vec<(u64, f64)>,
    /// Sum of every phase charge across all nodes.
    pub global: f64,
    /// `simulated_seconds` from the stream's `run_end`, if present.
    pub reported: Option<f64>,
}

/// Checks the merged invariant: per-node charges are accounted, their
/// sum is the global total, and — when the stream carries a `run_end` —
/// the global total reproduces `simulated_seconds` within
/// [`INVARIANT_TOLERANCE`].
pub fn check_invariant(events: &[TaggedEvent]) -> Result<MergedInvariant, String> {
    let mut per_node: BTreeMap<u64, f64> = BTreeMap::new();
    let mut reported = None;
    for t in events {
        let slot = per_node.entry(t.node_id).or_insert(0.0);
        if let Some(p) = t.event.phases() {
            *slot += p.total();
        }
        if let JournalEvent::RunEnd { simulated_seconds, .. } = &t.event {
            reported = Some(*simulated_seconds);
        }
    }
    let global: f64 = per_node.values().sum();
    let inv = MergedInvariant { per_node: per_node.into_iter().collect(), global, reported };
    if let Some(r) = reported {
        let drift = (global - r).abs();
        if drift > INVARIANT_TOLERANCE {
            return Err(format!(
                "merged invariant violated: journalled {global:.9}s vs reported {r:.9}s \
                 (drift {drift:.3e} > {INVARIANT_TOLERANCE:.0e})"
            ));
        }
    }
    Ok(inv)
}

/// The coordinator-side shipping ledger: a per-node high-water mark of
/// acknowledged journal lines. Workers resend from the acknowledged
/// cursor, so retried or duplicated batches are admitted at most once
/// and a reply from before the cursor contributes only its unseen tail.
#[derive(Clone, Debug, Default)]
pub struct ShipLedger {
    acks: Vec<u64>,
}

impl ShipLedger {
    /// A ledger for `nodes` wire nodes, all cursors at zero.
    pub fn new(nodes: usize) -> Self {
        ShipLedger { acks: vec![0; nodes] }
    }

    /// The acknowledged cursor for `node`: the seq the next poll asks for.
    pub fn ack(&self, node: usize) -> u64 {
        self.acks.get(node).copied().unwrap_or(0)
    }

    /// Admits a batch of `count` lines starting at seq `from`. Returns
    /// how many leading lines are already-acknowledged duplicates to
    /// skip; `None` means the batch starts past the cursor (a gap — the
    /// caller must drop it and re-poll from the cursor).
    pub fn admit(&mut self, node: usize, from: u64, count: u64) -> Option<u64> {
        let ack = self.acks.get_mut(node)?;
        if from > *ack {
            return None;
        }
        let skip = *ack - from;
        if count > skip {
            *ack = from + count;
        }
        Some(skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::PhaseSeconds;

    fn step(step: u64, secs: f64) -> JournalEvent {
        JournalEvent::Step {
            step,
            mode: crate::journal::StepMode::Hot,
            rate: 50,
            loss: 0.5,
            phases: PhaseSeconds([secs, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        }
    }

    fn mark(step: u64, label: &str) -> JournalEvent {
        JournalEvent::Mark { step, label: label.into(), detail: String::new() }
    }

    fn tag(node_id: u64, seq: u64, event: JournalEvent) -> TaggedEvent {
        TaggedEvent { node_id, seq, event }
    }

    fn coordinator_stream() -> Vec<TaggedEvent> {
        vec![
            tag(0, 0, step(1, 0.25)),
            tag(0, 1, step(2, 0.25)),
            tag(0, 2, step(3, 0.5)),
            tag(
                0,
                3,
                JournalEvent::RunEnd {
                    steps: 3,
                    hot_steps: 3,
                    cold_steps: 0,
                    transitions: 0,
                    simulated_seconds: 1.0,
                    final_accuracy: 0.5,
                    final_rate: None,
                    interrupted: false,
                },
            ),
        ]
    }

    #[test]
    fn worker_events_interleave_at_their_step_anchor() {
        let workers = vec![tag(1, 0, mark(2, "task")), tag(2, 0, mark(3, "task"))];
        let (merged, stats) = merge_tagged(&[coordinator_stream(), workers]);
        assert_eq!(stats.total, 6);
        assert_eq!(stats.duplicates, 0);
        assert_eq!(stats.nodes, vec![0, 1, 2]);
        let order: Vec<(u64, u64)> = merged.iter().map(|t| (t.node_id, t.seq)).collect();
        // Marks anchor at the start of their step and tie-break after
        // the coordinator's own record of that step (lower node id wins).
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (0, 2), (2, 0), (0, 3)]);
    }

    #[test]
    fn duplicated_and_out_of_order_batches_merge_exactly_once() {
        let coord = coordinator_stream();
        let mut shuffled = coord.clone();
        shuffled.reverse();
        let dupes = coord.clone();
        let (merged, stats) = merge_tagged(&[coord.clone(), shuffled, dupes]);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.duplicates, 8);
        assert_eq!(merged, coord, "first delivery wins and order is restored");
    }

    #[test]
    fn invariant_holds_globally_and_reports_per_node() {
        let workers = vec![tag(1, 0, mark(1, "join"))];
        let (merged, _) = merge_tagged(&[coordinator_stream(), workers]);
        let inv = check_invariant(&merged).expect("invariant");
        assert_eq!(inv.reported, Some(1.0));
        assert!((inv.global - 1.0).abs() < 1e-12);
        assert_eq!(inv.per_node.len(), 2);
        assert!((inv.per_node[0].1 - 1.0).abs() < 1e-12, "node 0 owns all charges");
        assert_eq!(inv.per_node[1].1, 0.0, "worker marks charge nothing");
    }

    #[test]
    fn invariant_violation_is_detected() {
        let mut coord = coordinator_stream();
        coord.push(tag(0, 4, step(4, 0.5))); // extra unreported charge
        assert!(check_invariant(&coord).is_err());
    }

    #[test]
    fn ship_ledger_dedupes_retries_and_rejects_gaps() {
        let mut l = ShipLedger::new(2);
        assert_eq!(l.admit(0, 0, 3), Some(0), "fresh batch admitted in full");
        assert_eq!(l.ack(0), 3);
        assert_eq!(l.admit(0, 0, 3), Some(3), "full retry skipped entirely");
        assert_eq!(l.admit(0, 2, 4), Some(1), "overlap contributes its tail");
        assert_eq!(l.ack(0), 6);
        assert_eq!(l.admit(0, 9, 1), None, "gap rejected");
        assert_eq!(l.ack(0), 6);
        assert_eq!(l.ack(1), 0, "nodes are independent");
        assert_eq!(l.admit(5, 0, 1), None, "unknown node rejected");
    }
}
