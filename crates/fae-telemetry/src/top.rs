//! The `fae top` dashboard: a plain-text, fixed-width snapshot of a
//! (possibly still growing) journal stream.
//!
//! [`render_top`] is a pure function from tagged events to text, so the
//! dashboard is unit-testable and byte-deterministic; the CLI merely
//! re-reads its source (journal file or live coordinator stream),
//! re-renders, and repaints.

use fae_sysmodel::Phase;

use crate::journal::{JournalEvent, TaggedEvent};
use crate::report::summarize_tagged;

/// Renders the dashboard for the stream as it stands. Designed for a
/// terminal repaint loop: stable layout, one screen, no trailing blank
/// churn.
pub fn render_top(tagged: &[TaggedEvent]) -> String {
    let s = summarize_tagged(tagged);
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };

    let sim = s.journalled_seconds();
    let steps_per_sec = if sim > 0.0 { s.steps as f64 / sim } else { 0.0 };
    let live = tagged
        .iter()
        .rev()
        .find_map(|t| match &t.event {
            JournalEvent::RunEnd { .. } | JournalEvent::ServeEnd { .. } => Some("done"),
            _ => None,
        })
        .unwrap_or("running");

    push(
        &mut out,
        format!("fae top — {} [{}]", s.workload.as_deref().unwrap_or("<unknown>"), live),
    );
    push(
        &mut out,
        format!(
            "steps {:>8} ({} hot / {} cold)   sim {:>10.3}s   {:>8.2} steps/s",
            s.steps, s.hot_steps, s.cold_steps, sim, steps_per_sec,
        ),
    );
    let hot_share = if s.steps > 0 { s.hot_steps as f64 / s.steps as f64 } else { 0.0 };
    let serve_rate = s.serve.as_ref().map(|sv| {
        let lookups = sv.hits + sv.misses;
        if lookups > 0 {
            sv.hits as f64 / lookups as f64
        } else {
            sv.hit_rate
        }
    });
    let serve_rate = match serve_rate {
        Some(r) => format!("{r:.4}"),
        None => "-".into(),
    };
    push(
        &mut out,
        format!(
            "hot-bag: {:.4} of steps pure-GPU   serve hit rate: {}   syncs {} ({} B)",
            hot_share, serve_rate, s.sync_count, s.sync_bytes,
        ),
    );
    push(
        &mut out,
        format!(
            "faults {}   recoveries {}   joins {}   losses {}   reshards {}   alerts {}",
            s.faults,
            s.recoveries,
            s.node_joins,
            s.node_losses,
            s.reshards,
            s.alerts.len(),
        ),
    );

    // Per-node phase split: each node's share of total charged seconds,
    // plus its dominant phase.
    push(&mut out, String::new());
    push(
        &mut out,
        format!(
            "{:<10} {:>8} {:>8} {:>12} {:>7}  {}",
            "node", "events", "marks", "charged (s)", "%", "top phase"
        ),
    );
    for n in &s.per_node {
        let label = if n.node_id == 0 {
            "0 (coord)".to_string()
        } else {
            format!("{} (w{})", n.node_id, n.node_id - 1)
        };
        let pct = if sim > 0.0 { 100.0 * n.charged_seconds / sim } else { 0.0 };
        let top_phase = dominant_phase(tagged, n.node_id);
        push(
            &mut out,
            format!(
                "{:<10} {:>8} {:>8} {:>12.6} {:>6.1}%  {}",
                label, n.events, n.marks, n.charged_seconds, pct, top_phase,
            ),
        );
    }

    for a in s.alerts.iter().rev().take(3).rev() {
        push(&mut out, format!("ALERT @{:<8} [{}] {}", a.step, a.rule, a.message));
    }
    out
}

/// The phase a node charged the most seconds to (`-` when it charged
/// nothing).
fn dominant_phase(tagged: &[TaggedEvent], node_id: u64) -> String {
    let mut totals = [0.0f64; 8];
    for t in tagged.iter().filter(|t| t.node_id == node_id) {
        if let Some(p) = t.event.phases() {
            for (slot, v) in totals.iter_mut().zip(p.0) {
                *slot += v;
            }
        }
    }
    let (best, secs) =
        totals
            .iter()
            .enumerate()
            .fold((0usize, 0.0f64), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc });
    if secs <= 0.0 {
        "-".into()
    } else {
        Phase::ALL[best].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{PhaseSeconds, StepMode};

    fn tag(node_id: u64, seq: u64, event: JournalEvent) -> TaggedEvent {
        TaggedEvent { node_id, seq, event }
    }

    fn stream() -> Vec<TaggedEvent> {
        vec![
            tag(
                0,
                0,
                JournalEvent::RunStart {
                    workload: "tiny-test".into(),
                    seed: 1,
                    num_gpus: 2,
                    workers: 2,
                    epochs: 1,
                    minibatch_size: 8,
                    initial_rate: 50,
                    lookahead: 0,
                    stale_skip: 0.0,
                },
            ),
            tag(
                0,
                1,
                JournalEvent::Step {
                    step: 1,
                    mode: StepMode::Hot,
                    rate: 50,
                    loss: 0.7,
                    phases: PhaseSeconds([0.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
                },
            ),
            tag(
                0,
                2,
                JournalEvent::Step {
                    step: 2,
                    mode: StepMode::Cold,
                    rate: 50,
                    loss: 0.6,
                    phases: PhaseSeconds([1.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
                },
            ),
            tag(1, 0, JournalEvent::Mark { step: 1, label: "task".into(), detail: "".into() }),
            tag(
                0,
                3,
                JournalEvent::Alert {
                    step: 2,
                    rule: "heartbeat-gap".into(),
                    message: "node 1 lost".into(),
                    value: 1.0,
                    threshold: 0.0,
                },
            ),
        ]
    }

    #[test]
    fn dashboard_shows_throughput_splits_and_alerts() {
        let text = render_top(&stream());
        assert!(text.contains("fae top — tiny-test [running]"));
        assert!(text.contains("1 hot / 1 cold"));
        assert!(text.contains("1.00 steps/s"), "2 steps over 2.0 sim s:\n{text}");
        assert!(text.contains("hot-bag: 0.5000"));
        assert!(text.contains("0 (coord)"));
        assert!(text.contains("1 (w0)"));
        assert!(text.contains("embed-forward"), "dominant phase of node 0");
        assert!(text.contains("ALERT @2"));
        assert!(text.contains("alerts 1"));
    }

    #[test]
    fn finished_runs_flip_the_header() {
        let mut s = stream();
        s.push(tag(
            0,
            4,
            JournalEvent::RunEnd {
                steps: 2,
                hot_steps: 1,
                cold_steps: 1,
                transitions: 1,
                simulated_seconds: 2.0,
                final_accuracy: 0.5,
                final_rate: None,
                interrupted: false,
            },
        ));
        assert!(render_top(&s).contains("[done]"));
    }

    #[test]
    fn render_is_deterministic_and_total_on_empty_input() {
        assert_eq!(render_top(&[]), render_top(&[]));
        assert!(render_top(&[]).contains("<unknown>"));
    }
}
