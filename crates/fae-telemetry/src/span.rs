//! Hierarchical spans over pipeline stages.
//!
//! A span is a named region of work identified by a `/`-separated path
//! (`pipeline/calibrate/log-accesses`). Opening one with
//! [`Telemetry::span`](crate::Telemetry::span) returns a guard that
//! measures real wall-clock seconds from open to drop; simulated seconds
//! are attributed explicitly via [`SpanGuard::add_sim`] because the
//! simulated `Timeline` advances only when the cost model charges it.
//! Completed spans aggregate into the registry's span table
//! (count / real_s / sim_s per path).

use std::time::Instant;

use crate::Telemetry;

/// An open span. Records itself into the owning [`Telemetry`] registry
/// when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    path: String,
    started: Instant,
    sim_s: f64,
}

impl SpanGuard {
    pub(crate) fn open(telemetry: Telemetry, path: &str) -> Self {
        Self { telemetry, path: path.to_string(), started: Instant::now(), sim_s: 0.0 }
    }

    /// Attributes `secs` of simulated time to this span.
    pub fn add_sim(&mut self, secs: f64) {
        self.sim_s += secs;
    }

    /// The span's path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let real_s = self.started.elapsed().as_secs_f64();
        self.telemetry.span_record(&self.path, real_s, self.sim_s);
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn disabled_handle_spans_are_noops() {
        let t = Telemetry::disabled();
        {
            let mut g = t.span("a/b");
            g.add_sim(5.0);
        }
        assert!(t.metrics().span("a/b").is_none());
    }

    #[test]
    fn span_records_on_drop() {
        let t = Telemetry::builder().try_build().expect("telemetry");
        {
            let mut g = t.span("pipeline/train");
            g.add_sim(2.5);
        }
        {
            let mut g = t.span("pipeline/train");
            g.add_sim(1.5);
        }
        let m = t.metrics();
        let s = m.span("pipeline/train").expect("span recorded");
        assert_eq!(s.count, 2);
        assert!((s.sim_s - 4.0).abs() < 1e-12);
        assert!(s.real_s >= 0.0);
    }

    #[test]
    fn nested_paths_aggregate_separately() {
        let t = Telemetry::builder().try_build().expect("telemetry");
        t.span("pipeline").add_sim(1.0);
        t.span("pipeline/calibrate").add_sim(0.5);
        t.span("pipeline/calibrate").add_sim(0.25);
        let m = t.metrics();
        assert_eq!(m.span("pipeline").unwrap().count, 1);
        assert_eq!(m.span("pipeline/calibrate").unwrap().count, 2);
        assert!((m.span("pipeline/calibrate").unwrap().sim_s - 0.75).abs() < 1e-12);
    }
}
