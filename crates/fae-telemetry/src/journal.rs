//! The per-step event journal: one JSON object per line, written
//! incrementally and flushed after every event so a crashed run leaves a
//! readable prefix (crash-safe by construction — a torn final line is
//! skipped by the reader, everything before it is intact).
//!
//! The schema is deliberately flat and stable — every event carries a
//! `"type"` tag, and every simulated-time charge carries a `"phases"`
//! object whose values sum (across the whole journal) to the run's
//! `TrainReport::simulated_seconds`. `fae report` and the Chrome trace
//! exporter both consume this stream.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use fae_sysmodel::{Phase, Timeline};
use serde_json::{Map, Value};

/// Per-phase simulated seconds of one charge, in `Phase::ALL` order.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct PhaseSeconds(pub [f64; 8]);

impl PhaseSeconds {
    /// The difference `after − before`, phase by phase.
    pub fn delta(before: &Timeline, after: &Timeline) -> Self {
        let mut out = [0.0; 8];
        for (slot, phase) in out.iter_mut().zip(Phase::ALL) {
            *slot = after.get(phase) - before.get(phase);
        }
        PhaseSeconds(out)
    }

    /// Total seconds across phases.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Seconds charged to `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.0[phase.index()]
    }

    fn to_json(self) -> Value {
        let mut m = Map::new();
        for (phase, secs) in Phase::ALL.iter().zip(self.0) {
            if secs != 0.0 {
                m.insert(phase.to_string(), serde_json::to_value(&secs));
            }
        }
        Value::Object(m)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let m = v.as_object().ok_or("phases: expected an object")?;
        let mut out = [0.0; 8];
        for (k, secs) in m.iter() {
            let i = Phase::ALL
                .iter()
                .position(|p| p.to_string() == *k)
                .ok_or_else(|| format!("phases: unknown phase '{k}'"))?;
            out[i] = secs.as_f64().ok_or_else(|| format!("phases.{k}: expected a number"))?;
        }
        Ok(PhaseSeconds(out))
    }
}

/// Whether a training step ran hot (pure-GPU) or cold (hybrid CPU+GPU).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepMode {
    /// Pure-GPU execution against the replicated hot bags.
    Hot,
    /// Hybrid execution against the CPU master tables.
    Cold,
}

impl StepMode {
    fn as_str(self) -> &'static str {
        match self {
            StepMode::Hot => "hot",
            StepMode::Cold => "cold",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hot" => Ok(StepMode::Hot),
            "cold" => Ok(StepMode::Cold),
            other => Err(format!("unknown step mode '{other}'")),
        }
    }
}

/// One journal line. Every variant that charges simulated time carries
/// its per-phase breakdown; summing `phases` over all events reproduces
/// the run's `Timeline` exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// Run header: emitted once, first.
    RunStart {
        /// Workload name.
        workload: String,
        /// Training seed.
        seed: u64,
        /// Simulated GPU count at launch.
        num_gpus: usize,
        /// Epochs requested.
        epochs: usize,
        /// Global mini-batch size.
        minibatch_size: usize,
        /// Initial shuffle-scheduler rate (percent).
        initial_rate: u32,
        /// Worker threads in the parallel execution engine (1 = serial;
        /// absent in pre-engine journals, parsed as 1).
        workers: usize,
        /// Lookahead-oracle window in batches (0 = disabled; absent in
        /// older journals, parsed as 0).
        lookahead: u64,
        /// Stale-skip threshold in weight-delta units (0 = disabled;
        /// absent in older journals, parsed as 0).
        stale_skip: f64,
    },
    /// One training step.
    Step {
        /// Global step index (1-based, after the step completes).
        step: u64,
        /// Hot or cold execution.
        mode: StepMode,
        /// Scheduler rate in effect (percent).
        rate: u32,
        /// This batch's training BCE loss.
        loss: f64,
        /// Simulated seconds charged by this step, per phase.
        phases: PhaseSeconds,
    },
    /// A hot↔cold embedding synchronisation (or the initial replication).
    Sync {
        /// Step count when the sync happened.
        step: u64,
        /// What the sync was for: `initial`, `refresh`, `write-back`,
        /// `aborted-replication` or `retry`.
        direction: String,
        /// Bytes moved over PCIe per replica.
        bytes: u64,
        /// Simulated seconds charged, per phase.
        phases: PhaseSeconds,
    },
    /// A non-step, non-sync simulated-time charge (re-shard after device
    /// loss, retry backoff, checkpoint I/O stall).
    Charge {
        /// Step count when the charge happened.
        step: u64,
        /// What was charged (`reshard`, `sync-backoff`, `checkpoint-io`).
        label: String,
        /// Simulated seconds charged, per phase.
        phases: PhaseSeconds,
    },
    /// An end-of-round evaluation.
    Eval {
        /// Step count at evaluation.
        step: u64,
        /// Test BCE loss.
        test_loss: f64,
        /// Test accuracy.
        test_accuracy: f64,
        /// Scheduler rate after adaptation (percent), if FAE.
        rate: Option<u32>,
        /// Cumulative hot steps at this point.
        hot_steps: u64,
        /// Cumulative cold steps at this point.
        cold_steps: u64,
        /// Cumulative simulated seconds at this point.
        sim_seconds: f64,
    },
    /// An injected fault fired.
    Fault {
        /// Step at which it fired.
        step: u64,
        /// Fault kind (spec-string form, e.g. `device-loss`).
        kind: String,
    },
    /// A recovery action was taken (including artifact rebuilds).
    Recovery {
        /// Step at which it was taken (0 for load-time recoveries).
        step: u64,
        /// Action label (e.g. `shrank-replicas`, `rebuilt-artifacts`).
        action: String,
        /// Human-readable detail (rebuild reason, retry counts, ...).
        detail: String,
    },
    /// A worker node joined (or rejoined) the distributed training group.
    NodeJoin {
        /// Step at which the coordinator admitted it.
        step: u64,
        /// The node's id.
        node: u64,
        /// Membership generation after the join.
        epoch: u64,
        /// Bytes of state shipped in the welcome (dense params + hot rows).
        state_bytes: u64,
    },
    /// A worker node was declared dead by the failure detector.
    NodeLost {
        /// Step at which it was declared dead.
        step: u64,
        /// The node's id.
        node: u64,
        /// Consecutive missed deadlines that crossed the suspicion
        /// threshold (0 = hard disconnect).
        suspicion: u64,
    },
    /// The coordinator re-assigned a lost node's shard and charged the
    /// reshard to the timeline.
    Reshard {
        /// Step at which the reshard happened.
        step: u64,
        /// The lost node whose shard moved.
        node: u64,
        /// Live workers after the reshard.
        live: u64,
        /// Simulated seconds charged, per phase.
        phases: PhaseSeconds,
    },
    /// Run trailer: totals, emitted once, last.
    RunEnd {
        /// Total steps executed.
        steps: u64,
        /// Steps run hot.
        hot_steps: u64,
        /// Steps run cold.
        cold_steps: u64,
        /// Hot↔cold transitions.
        transitions: u64,
        /// Total simulated seconds (`Timeline::total`).
        simulated_seconds: f64,
        /// Final test accuracy.
        final_accuracy: f64,
        /// Final scheduler rate, if FAE.
        final_rate: Option<u32>,
        /// Whether the run was interrupted (`halt_after_steps`).
        interrupted: bool,
    },
    /// Serve-run header (`fae serve`): emitted once, first.
    ServeStart {
        /// Workload name.
        workload: String,
        /// Serving seed (model init fallback + closed-loop input draws).
        seed: u64,
        /// Serving worker pool size.
        workers: usize,
        /// Micro-batcher close threshold (requests).
        max_batch: usize,
        /// Micro-batcher deadline, microseconds.
        max_delay_us: u64,
        /// Bounded-queue admission cap (requests queued or in flight).
        queue_cap: usize,
    },
    /// One dispatched inference micro-batch.
    ServeBatch {
        /// Batch index (dispatch order, 1-based).
        batch: u64,
        /// Worker that executed it.
        worker: usize,
        /// Requests in the batch.
        size: usize,
        /// Simulated dispatch instant, seconds from serve start.
        start_s: f64,
        /// Embedding lookups served GPU-side (pinned + dynamic hits).
        hits: u64,
        /// Embedding lookups fetched from the CPU master copy.
        misses: u64,
        /// Simulated seconds charged by this batch, per phase.
        phases: PhaseSeconds,
    },
    /// A node-local informational marker (no simulated-time charge):
    /// worker lifecycle points (`join`, `task`, `crash-inject`, ...)
    /// shipped to the coordinator by the observability plane.
    Mark {
        /// Step count the marker is anchored to (coordinator clock).
        step: u64,
        /// What happened (`join`, `task`, `crash-inject`, `rejoin`).
        label: String,
        /// Free-form detail (epoch, shard, batch counts, ...).
        detail: String,
    },
    /// An alert rule fired. Alert firings are journal events themselves,
    /// so merged journals and traces carry the SLO story inline.
    Alert {
        /// Step at which the rule fired.
        step: u64,
        /// Rule id (`heartbeat-gap`, `reshard-storm`, `hit-rate`,
        /// `steps-per-sec`).
        rule: String,
        /// Human-readable firing message.
        message: String,
        /// The observed value that crossed the threshold.
        value: f64,
        /// The configured threshold.
        threshold: f64,
    },
    /// Serve-run trailer: totals, emitted once, last.
    ServeEnd {
        /// Requests completed.
        completed: u64,
        /// Requests rejected at the bounded queue.
        rejected: u64,
        /// Median request latency, milliseconds.
        p50_ms: f64,
        /// 95th-percentile request latency, milliseconds.
        p95_ms: f64,
        /// 99th-percentile request latency, milliseconds.
        p99_ms: f64,
        /// Completed requests per simulated second.
        throughput_rps: f64,
        /// Fraction of embedding lookups served GPU-side.
        hit_rate: f64,
        /// Simulated makespan of the serve run, seconds.
        simulated_seconds: f64,
    },
}

impl JournalEvent {
    /// The `"type"` tag this event serializes under.
    pub fn type_tag(&self) -> &'static str {
        match self {
            JournalEvent::RunStart { .. } => "run_start",
            JournalEvent::Step { .. } => "step",
            JournalEvent::Sync { .. } => "sync",
            JournalEvent::Charge { .. } => "charge",
            JournalEvent::Eval { .. } => "eval",
            JournalEvent::Fault { .. } => "fault",
            JournalEvent::Recovery { .. } => "recovery",
            JournalEvent::NodeJoin { .. } => "node_join",
            JournalEvent::NodeLost { .. } => "node_lost",
            JournalEvent::Reshard { .. } => "reshard",
            JournalEvent::RunEnd { .. } => "run_end",
            JournalEvent::ServeStart { .. } => "serve_start",
            JournalEvent::ServeBatch { .. } => "serve_batch",
            JournalEvent::Mark { .. } => "mark",
            JournalEvent::Alert { .. } => "alert",
            JournalEvent::ServeEnd { .. } => "serve_end",
        }
    }

    /// The per-phase simulated charge this event carries, if any.
    pub fn phases(&self) -> Option<&PhaseSeconds> {
        match self {
            JournalEvent::Step { phases, .. }
            | JournalEvent::Sync { phases, .. }
            | JournalEvent::Charge { phases, .. }
            | JournalEvent::Reshard { phases, .. }
            | JournalEvent::ServeBatch { phases, .. } => Some(phases),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("type".into(), Value::String(self.type_tag().into()));
        match self {
            JournalEvent::RunStart {
                workload,
                seed,
                num_gpus,
                epochs,
                minibatch_size,
                initial_rate,
                workers,
                lookahead,
                stale_skip,
            } => {
                m.insert("workload".into(), Value::String(workload.clone()));
                m.insert("seed".into(), serde_json::to_value(seed));
                m.insert("num_gpus".into(), serde_json::to_value(num_gpus));
                m.insert("epochs".into(), serde_json::to_value(epochs));
                m.insert("minibatch_size".into(), serde_json::to_value(minibatch_size));
                m.insert("initial_rate".into(), serde_json::to_value(initial_rate));
                m.insert("workers".into(), serde_json::to_value(workers));
                m.insert("lookahead".into(), serde_json::to_value(lookahead));
                m.insert("stale_skip".into(), serde_json::to_value(stale_skip));
            }
            JournalEvent::Step { step, mode, rate, loss, phases } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("mode".into(), Value::String(mode.as_str().into()));
                m.insert("rate".into(), serde_json::to_value(rate));
                m.insert("loss".into(), serde_json::to_value(loss));
                m.insert("phases".into(), phases.to_json());
            }
            JournalEvent::Sync { step, direction, bytes, phases } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("direction".into(), Value::String(direction.clone()));
                m.insert("bytes".into(), serde_json::to_value(bytes));
                m.insert("phases".into(), phases.to_json());
            }
            JournalEvent::Charge { step, label, phases } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("label".into(), Value::String(label.clone()));
                m.insert("phases".into(), phases.to_json());
            }
            JournalEvent::Eval {
                step,
                test_loss,
                test_accuracy,
                rate,
                hot_steps,
                cold_steps,
                sim_seconds,
            } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("test_loss".into(), serde_json::to_value(test_loss));
                m.insert("test_accuracy".into(), serde_json::to_value(test_accuracy));
                m.insert("rate".into(), serde_json::to_value(rate));
                m.insert("hot_steps".into(), serde_json::to_value(hot_steps));
                m.insert("cold_steps".into(), serde_json::to_value(cold_steps));
                m.insert("sim_seconds".into(), serde_json::to_value(sim_seconds));
            }
            JournalEvent::Fault { step, kind } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("kind".into(), Value::String(kind.clone()));
            }
            JournalEvent::Recovery { step, action, detail } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("action".into(), Value::String(action.clone()));
                m.insert("detail".into(), Value::String(detail.clone()));
            }
            JournalEvent::NodeJoin { step, node, epoch, state_bytes } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("node".into(), serde_json::to_value(node));
                m.insert("epoch".into(), serde_json::to_value(epoch));
                m.insert("state_bytes".into(), serde_json::to_value(state_bytes));
            }
            JournalEvent::NodeLost { step, node, suspicion } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("node".into(), serde_json::to_value(node));
                m.insert("suspicion".into(), serde_json::to_value(suspicion));
            }
            JournalEvent::Reshard { step, node, live, phases } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("node".into(), serde_json::to_value(node));
                m.insert("live".into(), serde_json::to_value(live));
                m.insert("phases".into(), phases.to_json());
            }
            JournalEvent::RunEnd {
                steps,
                hot_steps,
                cold_steps,
                transitions,
                simulated_seconds,
                final_accuracy,
                final_rate,
                interrupted,
            } => {
                m.insert("steps".into(), serde_json::to_value(steps));
                m.insert("hot_steps".into(), serde_json::to_value(hot_steps));
                m.insert("cold_steps".into(), serde_json::to_value(cold_steps));
                m.insert("transitions".into(), serde_json::to_value(transitions));
                m.insert("simulated_seconds".into(), serde_json::to_value(simulated_seconds));
                m.insert("final_accuracy".into(), serde_json::to_value(final_accuracy));
                m.insert("final_rate".into(), serde_json::to_value(final_rate));
                m.insert("interrupted".into(), serde_json::to_value(interrupted));
            }
            JournalEvent::ServeStart {
                workload,
                seed,
                workers,
                max_batch,
                max_delay_us,
                queue_cap,
            } => {
                m.insert("workload".into(), Value::String(workload.clone()));
                m.insert("seed".into(), serde_json::to_value(seed));
                m.insert("workers".into(), serde_json::to_value(workers));
                m.insert("max_batch".into(), serde_json::to_value(max_batch));
                m.insert("max_delay_us".into(), serde_json::to_value(max_delay_us));
                m.insert("queue_cap".into(), serde_json::to_value(queue_cap));
            }
            JournalEvent::Mark { step, label, detail } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("label".into(), Value::String(label.clone()));
                m.insert("detail".into(), Value::String(detail.clone()));
            }
            JournalEvent::Alert { step, rule, message, value, threshold } => {
                m.insert("step".into(), serde_json::to_value(step));
                m.insert("rule".into(), Value::String(rule.clone()));
                m.insert("message".into(), Value::String(message.clone()));
                m.insert("value".into(), serde_json::to_value(value));
                m.insert("threshold".into(), serde_json::to_value(threshold));
            }
            JournalEvent::ServeBatch { batch, worker, size, start_s, hits, misses, phases } => {
                m.insert("batch".into(), serde_json::to_value(batch));
                m.insert("worker".into(), serde_json::to_value(worker));
                m.insert("size".into(), serde_json::to_value(size));
                m.insert("start_s".into(), serde_json::to_value(start_s));
                m.insert("hits".into(), serde_json::to_value(hits));
                m.insert("misses".into(), serde_json::to_value(misses));
                m.insert("phases".into(), phases.to_json());
            }
            JournalEvent::ServeEnd {
                completed,
                rejected,
                p50_ms,
                p95_ms,
                p99_ms,
                throughput_rps,
                hit_rate,
                simulated_seconds,
            } => {
                m.insert("completed".into(), serde_json::to_value(completed));
                m.insert("rejected".into(), serde_json::to_value(rejected));
                m.insert("p50_ms".into(), serde_json::to_value(p50_ms));
                m.insert("p95_ms".into(), serde_json::to_value(p95_ms));
                m.insert("p99_ms".into(), serde_json::to_value(p99_ms));
                m.insert("throughput_rps".into(), serde_json::to_value(throughput_rps));
                m.insert("hit_rate".into(), serde_json::to_value(hit_rate));
                m.insert("simulated_seconds".into(), serde_json::to_value(simulated_seconds));
            }
        }
        Value::Object(m)
    }

    /// Parses one journal line's value tree.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let tag = v.get("type").and_then(Value::as_str).ok_or("journal event: missing \"type\"")?;
        let get_u64 = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{tag}: missing or non-integer \"{key}\""))
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{tag}: missing or non-numeric \"{key}\""))
        };
        let get_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{tag}: missing or non-string \"{key}\""))
        };
        let get_phases = || -> Result<PhaseSeconds, String> {
            PhaseSeconds::from_json(v.get("phases").ok_or(format!("{tag}: missing \"phases\""))?)
        };
        let get_rate_opt = |key: &str| -> Result<Option<u32>, String> {
            match v.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(r) => r
                    .as_u64()
                    .map(|u| Some(u as u32))
                    .ok_or_else(|| format!("{tag}: non-integer \"{key}\"")),
            }
        };
        Ok(match tag {
            "run_start" => JournalEvent::RunStart {
                workload: get_str("workload")?,
                seed: get_u64("seed")?,
                num_gpus: get_u64("num_gpus")? as usize,
                epochs: get_u64("epochs")? as usize,
                minibatch_size: get_u64("minibatch_size")? as usize,
                initial_rate: get_u64("initial_rate")? as u32,
                // Pre-engine journals have no workers field: serial run.
                workers: v.get("workers").and_then(Value::as_u64).unwrap_or(1) as usize,
                // Pre-oracle journals have neither of these: both off.
                lookahead: v.get("lookahead").and_then(Value::as_u64).unwrap_or(0),
                stale_skip: v.get("stale_skip").and_then(Value::as_f64).unwrap_or(0.0),
            },
            "step" => JournalEvent::Step {
                step: get_u64("step")?,
                mode: StepMode::parse(&get_str("mode")?)?,
                rate: get_u64("rate")? as u32,
                loss: get_f64("loss")?,
                phases: get_phases()?,
            },
            "sync" => JournalEvent::Sync {
                step: get_u64("step")?,
                direction: get_str("direction")?,
                bytes: get_u64("bytes")?,
                phases: get_phases()?,
            },
            "charge" => JournalEvent::Charge {
                step: get_u64("step")?,
                label: get_str("label")?,
                phases: get_phases()?,
            },
            "eval" => JournalEvent::Eval {
                step: get_u64("step")?,
                test_loss: get_f64("test_loss")?,
                test_accuracy: get_f64("test_accuracy")?,
                rate: get_rate_opt("rate")?,
                hot_steps: get_u64("hot_steps")?,
                cold_steps: get_u64("cold_steps")?,
                sim_seconds: get_f64("sim_seconds")?,
            },
            "fault" => JournalEvent::Fault { step: get_u64("step")?, kind: get_str("kind")? },
            "recovery" => JournalEvent::Recovery {
                step: get_u64("step")?,
                action: get_str("action")?,
                detail: get_str("detail")?,
            },
            "node_join" => JournalEvent::NodeJoin {
                step: get_u64("step")?,
                node: get_u64("node")?,
                epoch: get_u64("epoch")?,
                state_bytes: get_u64("state_bytes")?,
            },
            "node_lost" => JournalEvent::NodeLost {
                step: get_u64("step")?,
                node: get_u64("node")?,
                suspicion: get_u64("suspicion")?,
            },
            "reshard" => JournalEvent::Reshard {
                step: get_u64("step")?,
                node: get_u64("node")?,
                live: get_u64("live")?,
                phases: get_phases()?,
            },
            "run_end" => JournalEvent::RunEnd {
                steps: get_u64("steps")?,
                hot_steps: get_u64("hot_steps")?,
                cold_steps: get_u64("cold_steps")?,
                transitions: get_u64("transitions")?,
                simulated_seconds: get_f64("simulated_seconds")?,
                final_accuracy: get_f64("final_accuracy")?,
                final_rate: get_rate_opt("final_rate")?,
                interrupted: v
                    .get("interrupted")
                    .and_then(|b| match b {
                        Value::Bool(x) => Some(*x),
                        _ => None,
                    })
                    .ok_or("run_end: missing \"interrupted\"")?,
            },
            "serve_start" => JournalEvent::ServeStart {
                workload: get_str("workload")?,
                seed: get_u64("seed")?,
                workers: get_u64("workers")? as usize,
                max_batch: get_u64("max_batch")? as usize,
                max_delay_us: get_u64("max_delay_us")?,
                queue_cap: get_u64("queue_cap")? as usize,
            },
            "mark" => JournalEvent::Mark {
                step: get_u64("step")?,
                label: get_str("label")?,
                detail: get_str("detail")?,
            },
            "alert" => JournalEvent::Alert {
                step: get_u64("step")?,
                rule: get_str("rule")?,
                message: get_str("message")?,
                value: get_f64("value")?,
                threshold: get_f64("threshold")?,
            },
            "serve_batch" => JournalEvent::ServeBatch {
                batch: get_u64("batch")?,
                worker: get_u64("worker")? as usize,
                size: get_u64("size")? as usize,
                start_s: get_f64("start_s")?,
                hits: get_u64("hits")?,
                misses: get_u64("misses")?,
                phases: get_phases()?,
            },
            "serve_end" => JournalEvent::ServeEnd {
                completed: get_u64("completed")?,
                rejected: get_u64("rejected")?,
                p50_ms: get_f64("p50_ms")?,
                p95_ms: get_f64("p95_ms")?,
                p99_ms: get_f64("p99_ms")?,
                throughput_rps: get_f64("throughput_rps")?,
                hit_rate: get_f64("hit_rate")?,
                simulated_seconds: get_f64("simulated_seconds")?,
            },
            other => return Err(format!("unknown journal event type '{other}'")),
        })
    }
}

/// One journal event with its origin coordinates: which node emitted it
/// (`node_id`) and where it sits in that node's emission order (`seq`).
///
/// The origin tag is distinct from the *subject* `node` field of
/// membership events (`node_join`, `node_lost`, `reshard`): those name
/// the wire node the event is about; `node_id` names the journal that
/// produced the line. Convention: the coordinator (and any
/// single-process run) is `node_id` 0, wire worker `k` is `node_id`
/// `k + 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct TaggedEvent {
    /// Originating journal (0 = coordinator / single-process).
    pub node_id: u64,
    /// Position in the originating journal's emission order.
    pub seq: u64,
    /// The event itself.
    pub event: JournalEvent,
}

impl TaggedEvent {
    /// Serializes to the single-line JSON object the journal stores:
    /// the event's own object plus `node_id` and `seq` keys.
    pub fn to_json(&self) -> Value {
        let mut v = self.event.to_json();
        if let Value::Object(m) = &mut v {
            m.insert("node_id".into(), serde_json::to_value(&self.node_id));
            m.insert("seq".into(), serde_json::to_value(&self.seq));
        }
        v
    }

    /// The one-line JSONL form (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(&self.to_json()).unwrap_or_default()
    }

    /// Parses a tagged line's value tree. Legacy lines without the tag
    /// fall back to `node_id` 0 and `seq = fallback_seq`, so pre-plane
    /// journals keep parsing.
    pub fn from_json(v: &Value, fallback_seq: u64) -> Result<Self, String> {
        let event = JournalEvent::from_json(v)?;
        let node_id = v.get("node_id").and_then(Value::as_u64).unwrap_or(0);
        let seq = v.get("seq").and_then(Value::as_u64).unwrap_or(fallback_seq);
        Ok(TaggedEvent { node_id, seq, event })
    }
}

/// An incremental JSONL writer. Every [`write`](JournalWriter::write)
/// appends one line and flushes, so the file on disk is always a valid
/// prefix of the journal — a crash costs at most the line being written.
/// Every line is tagged with the writer's `node_id` and a running `seq`.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
    node_id: u64,
    lines: u64,
}

impl JournalWriter {
    /// Creates (truncates) the journal file at `path`, tagging lines as
    /// node 0 (the single-process / coordinator convention).
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::create_for_node(path, 0)
    }

    /// Creates (truncates) the journal file at `path`, tagging lines
    /// with `node_id`.
    pub fn create_for_node(path: &Path, node_id: u64) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self { out: BufWriter::new(File::create(path)?), node_id, lines: 0 })
    }

    /// Appends one event (tagged with this writer's node id and the next
    /// sequence number) and flushes it to disk.
    pub fn write(&mut self, event: &JournalEvent) -> io::Result<()> {
        let tagged = TaggedEvent { node_id: self.node_id, seq: self.lines, event: event.clone() };
        self.write_raw_line(&tagged.to_line())
    }

    /// Appends one pre-serialized JSONL line verbatim (already tagged at
    /// its origin — used when the coordinator persists shipped worker
    /// events without re-tagging them).
    pub fn write_raw_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

/// Parses a journal text (JSONL). Blank lines are skipped; a torn final
/// line (crash mid-write) is tolerated and dropped, but a malformed line
/// anywhere else is an error.
pub fn parse_journal(text: &str) -> Result<Vec<JournalEvent>, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut events = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) if i + 1 == lines.len() => {
                eprintln!("journal: dropping torn final line: {e}");
                break;
            }
            Err(e) => return Err(format!("journal line {}: {e}", i + 1)),
        };
        events.push(
            JournalEvent::from_json(&value).map_err(|e| format!("journal line {}: {e}", i + 1))?,
        );
    }
    Ok(events)
}

/// Reads and parses a journal file.
pub fn read_journal(path: &Path) -> Result<Vec<JournalEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_journal(&text)
}

/// Parses a journal text keeping origin tags. Same torn-final-line
/// tolerance as [`parse_journal`]; legacy untagged lines come back as
/// node 0 with `seq` equal to their position in the file, so pre-plane
/// journals merge like a single-node stream.
pub fn parse_tagged_journal(text: &str) -> Result<Vec<TaggedEvent>, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut events = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) if i + 1 == lines.len() => {
                eprintln!("journal: dropping torn final line: {e}");
                break;
            }
            Err(e) => return Err(format!("journal line {}: {e}", i + 1)),
        };
        events.push(
            TaggedEvent::from_json(&value, events.len() as u64)
                .map_err(|e| format!("journal line {}: {e}", i + 1))?,
        );
    }
    Ok(events)
}

/// Reads and parses a journal file keeping origin tags.
pub fn read_tagged_journal(path: &Path) -> Result<Vec<TaggedEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_tagged_journal(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        let mut t0 = Timeline::new();
        let mut t1 = Timeline::new();
        t1.add(Phase::DenseForward, 0.25);
        t1.add(Phase::AllReduce, 0.5);
        vec![
            JournalEvent::RunStart {
                workload: "tiny-test".into(),
                seed: 7,
                num_gpus: 4,
                epochs: 1,
                minibatch_size: 64,
                initial_rate: 50,
                workers: 2,
                lookahead: 0,
                stale_skip: 0.0,
            },
            JournalEvent::Step {
                step: 1,
                mode: StepMode::Cold,
                rate: 50,
                loss: 0.693,
                phases: PhaseSeconds::delta(&t0, &t1),
            },
            JournalEvent::Sync {
                step: 1,
                direction: "refresh".into(),
                bytes: 1 << 20,
                phases: {
                    t0 = t1.clone();
                    t1.add(Phase::EmbedSync, 0.125);
                    PhaseSeconds::delta(&t0, &t1)
                },
            },
            JournalEvent::Charge {
                step: 2,
                label: "reshard".into(),
                phases: PhaseSeconds([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0625]),
            },
            JournalEvent::Eval {
                step: 2,
                test_loss: 0.69,
                test_accuracy: 0.55,
                rate: Some(25),
                hot_steps: 1,
                cold_steps: 1,
                sim_seconds: 0.9375,
            },
            JournalEvent::Fault { step: 2, kind: "device-loss".into() },
            JournalEvent::Recovery {
                step: 2,
                action: "shrank-replicas".into(),
                detail: "4 -> 3".into(),
            },
            JournalEvent::NodeLost { step: 2, node: 1, suspicion: 3 },
            JournalEvent::Reshard {
                step: 2,
                node: 1,
                live: 1,
                phases: PhaseSeconds([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.03125]),
            },
            JournalEvent::NodeJoin { step: 2, node: 1, epoch: 2, state_bytes: 1 << 16 },
            JournalEvent::RunEnd {
                steps: 2,
                hot_steps: 1,
                cold_steps: 1,
                transitions: 2,
                simulated_seconds: 0.9375,
                final_accuracy: 0.55,
                final_rate: Some(25),
                interrupted: false,
            },
            JournalEvent::ServeStart {
                workload: "tiny-test".into(),
                seed: 7,
                workers: 2,
                max_batch: 32,
                max_delay_us: 2000,
                queue_cap: 1024,
            },
            JournalEvent::ServeBatch {
                batch: 1,
                worker: 0,
                size: 32,
                start_s: 0.002,
                hits: 120,
                misses: 8,
                phases: PhaseSeconds([1e-4, 2e-4, 0.0, 0.0, 5e-5, 0.0, 0.0, 5e-5]),
            },
            JournalEvent::ServeEnd {
                completed: 32,
                rejected: 0,
                p50_ms: 1.5,
                p95_ms: 2.75,
                p99_ms: 3.0,
                throughput_rps: 8000.0,
                hit_rate: 0.9375,
                simulated_seconds: 0.004,
            },
            JournalEvent::Mark {
                step: 3,
                label: "task".into(),
                detail: "shard=1 batches=8".into(),
            },
            JournalEvent::Alert {
                step: 2,
                rule: "heartbeat-gap".into(),
                message: "node 1 lost after 3 missed deadlines".into(),
                value: 3.0,
                threshold: 2.0,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for e in sample_events() {
            let back = JournalEvent::from_json(&e.to_json()).expect("round trip");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn writer_reader_round_trip() {
        let dir = std::env::temp_dir().join("fae-telemetry-journal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let events = sample_events();
        let mut w = JournalWriter::create(&path).unwrap();
        for e in &events {
            w.write(e).unwrap();
        }
        assert_eq!(w.lines(), events.len() as u64);
        let back = read_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, events);
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let events = sample_events();
        let mut text = String::new();
        for e in &events {
            text.push_str(&serde_json::to_string(&e.to_json()).unwrap());
            text.push('\n');
        }
        text.push_str("{\"type\":\"step\",\"ste"); // torn mid-write
        let back = parse_journal(&text).expect("torn tail tolerated");
        assert_eq!(back, events);
    }

    #[test]
    fn malformed_interior_line_is_an_error() {
        let text = "not json\n{\"type\":\"fault\",\"step\":1,\"kind\":\"device-loss\"}\n";
        assert!(parse_journal(text).is_err());
    }

    #[test]
    fn phase_delta_and_total() {
        let mut a = Timeline::new();
        a.add(Phase::Optimizer, 1.0);
        let mut b = a.clone();
        b.add(Phase::Optimizer, 0.5);
        b.add(Phase::Transfer, 0.25);
        let d = PhaseSeconds::delta(&a, &b);
        assert_eq!(d.get(Phase::Optimizer), 0.5);
        assert_eq!(d.get(Phase::Transfer), 0.25);
        assert_eq!(d.get(Phase::Backward), 0.0);
        assert!((d.total() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn pre_engine_run_start_parses_as_one_worker() {
        let line = "{\"type\":\"run_start\",\"workload\":\"w\",\"seed\":1,\"num_gpus\":2,\
                    \"epochs\":1,\"minibatch_size\":64,\"initial_rate\":50}";
        let v: Value = serde_json::from_str(line).unwrap();
        match JournalEvent::from_json(&v).unwrap() {
            JournalEvent::RunStart { workers, .. } => assert_eq!(workers, 1),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn unknown_event_type_is_rejected() {
        let v: Value = serde_json::from_str("{\"type\":\"mystery\"}").unwrap();
        assert!(JournalEvent::from_json(&v).is_err());
    }

    #[test]
    fn written_lines_carry_node_id_and_seq() {
        let dir = std::env::temp_dir().join("fae-telemetry-journal-tag");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tagged.jsonl");
        let mut w = JournalWriter::create_for_node(&path, 3).unwrap();
        for e in sample_events().iter().take(4) {
            w.write(e).unwrap();
        }
        let tagged = read_tagged_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(tagged.len(), 4);
        for (i, t) in tagged.iter().enumerate() {
            assert_eq!(t.node_id, 3);
            assert_eq!(t.seq, i as u64);
        }
        // The plain parser reads the same file, dropping the tags.
        assert_eq!(tagged[0].event.type_tag(), "run_start");
    }

    #[test]
    fn default_writer_tags_node_zero() {
        let dir = std::env::temp_dir().join("fae-telemetry-journal-tag0");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("n0.jsonl");
        let mut w = JournalWriter::create(&path).unwrap();
        w.write(&JournalEvent::Fault { step: 1, kind: "device-loss".into() }).unwrap();
        let tagged = read_tagged_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(tagged[0].node_id, 0);
        assert_eq!(tagged[0].seq, 0);
    }

    #[test]
    fn legacy_untagged_lines_parse_as_node_zero_in_file_order() {
        let text = "{\"type\":\"fault\",\"step\":1,\"kind\":\"device-loss\"}\n\
                    {\"type\":\"recovery\",\"step\":1,\"action\":\"a\",\"detail\":\"d\"}\n";
        let tagged = parse_tagged_journal(text).unwrap();
        assert_eq!(tagged.len(), 2);
        assert_eq!((tagged[0].node_id, tagged[0].seq), (0, 0));
        assert_eq!((tagged[1].node_id, tagged[1].seq), (0, 1));
    }

    #[test]
    fn tagged_round_trip_preserves_origin() {
        let t = TaggedEvent {
            node_id: 2,
            seq: 17,
            event: JournalEvent::Mark { step: 5, label: "task".into(), detail: "x".into() },
        };
        let v: Value = serde_json::from_str(&t.to_line()).unwrap();
        let back = TaggedEvent::from_json(&v, 0).unwrap();
        assert_eq!(back, t);
    }
}
