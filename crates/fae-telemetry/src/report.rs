//! Journal aggregation and the Fig.-14-style phase-breakdown report.
//!
//! [`summarize`] folds a journal's event stream into a [`RunSummary`]
//! whose per-phase totals are split by where the time was spent — hot
//! steps, cold steps, synchronisation, other charges — exactly the
//! decomposition the paper uses to argue FAE's win (hot mini-batches
//! eliminate the CPU-resident embedding phases). [`render`] prints it as
//! a fixed-width table; `fae report <journal>` is a thin wrapper.

use fae_sysmodel::Phase;

use crate::journal::{JournalEvent, StepMode, TaggedEvent};

/// Per-phase simulated seconds split by spend category. Arrays are
/// indexed in `Phase::ALL` order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Seconds charged by hot (pure-GPU) steps.
    pub hot: [f64; 8],
    /// Seconds charged by cold (hybrid) steps.
    pub cold: [f64; 8],
    /// Seconds charged by embedding synchronisation events.
    pub sync: [f64; 8],
    /// Seconds charged by everything else (reshard, backoff, I/O stalls).
    pub other: [f64; 8],
}

impl PhaseBreakdown {
    /// Total seconds for phase index `i` across all categories.
    pub fn phase_total(&self, i: usize) -> f64 {
        self.hot[i] + self.cold[i] + self.sync[i] + self.other[i]
    }

    /// Grand total across phases and categories.
    pub fn grand_total(&self) -> f64 {
        (0..8).map(|i| self.phase_total(i)).sum()
    }
}

/// One evaluation row extracted from the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalRow {
    /// Step count at evaluation.
    pub step: u64,
    /// Test BCE loss.
    pub test_loss: f64,
    /// Test accuracy.
    pub test_accuracy: f64,
    /// Scheduler rate after adaptation, if FAE.
    pub rate: Option<u32>,
}

/// Aggregated serving metrics extracted from a serve journal
/// (`serve_start` / `serve_batch` / `serve_end` events).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeSummary {
    /// Serving worker pool size from the serve header.
    pub workers: usize,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Requests completed (from the serve trailer).
    pub completed: u64,
    /// Requests rejected at the bounded queue.
    pub rejected: u64,
    /// Embedding lookups served GPU-side across all batches.
    pub hits: u64,
    /// Embedding lookups fetched from the CPU master copy.
    pub misses: u64,
    /// GPU-side share of lookups (from the serve trailer).
    pub hit_rate: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Simulated makespan of the serve run, seconds.
    pub simulated_seconds: f64,
    /// Per-phase busy seconds summed across workers (`Phase::ALL` order).
    /// Exceeding `simulated_seconds` just means more than one worker was
    /// busy at once — this is busy time, not makespan.
    pub phase_seconds: [f64; 8],
}

/// One alert firing extracted from the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRow {
    /// Step at which the rule fired.
    pub step: u64,
    /// Rule id.
    pub rule: String,
    /// Firing message.
    pub message: String,
}

/// Per-originating-node activity in a merged stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeSummary {
    /// Originating journal node id (0 = coordinator).
    pub node_id: u64,
    /// Events this node emitted.
    pub events: u64,
    /// Informational marks among them.
    pub marks: u64,
    /// Simulated seconds this node's events charged.
    pub charged_seconds: f64,
}

/// Everything `fae report` prints, extracted from one journal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Workload name from the run header, if present.
    pub workload: Option<String>,
    /// Simulated GPU count from the run header.
    pub num_gpus: Option<usize>,
    /// Steps seen in the journal.
    pub steps: u64,
    /// Hot steps seen.
    pub hot_steps: u64,
    /// Cold steps seen.
    pub cold_steps: u64,
    /// Sync events seen.
    pub sync_count: u64,
    /// Total bytes moved by sync events.
    pub sync_bytes: u64,
    /// Fault events seen.
    pub faults: u64,
    /// Recovery events seen.
    pub recoveries: u64,
    /// Node-join events seen (distributed runs).
    pub node_joins: u64,
    /// Node-lost events seen (distributed runs).
    pub node_losses: u64,
    /// Reshard events seen (distributed runs).
    pub reshards: u64,
    /// Evaluations in journal order.
    pub evals: Vec<EvalRow>,
    /// The per-phase/category time split.
    pub breakdown: PhaseBreakdown,
    /// `simulated_seconds` from the run trailer, if the run finished.
    pub reported_simulated_seconds: Option<f64>,
    /// Final accuracy from the run trailer.
    pub final_accuracy: Option<f64>,
    /// Whether the run trailer flagged an interrupted run.
    pub interrupted: bool,
    /// Serving metrics, present when the journal carries serve events.
    pub serve: Option<ServeSummary>,
    /// Alert firings in journal order.
    pub alerts: Vec<AlertRow>,
    /// Per-node activity, populated by [`summarize_tagged`] (empty for
    /// plain single-journal summaries).
    pub per_node: Vec<NodeSummary>,
}

impl RunSummary {
    /// Sum of all journalled per-phase seconds. When the run finished
    /// cleanly this matches `reported_simulated_seconds` to within float
    /// error — the acceptance invariant of the journal.
    pub fn journalled_seconds(&self) -> f64 {
        self.breakdown.grand_total()
    }
}

/// Folds a journal into a [`RunSummary`].
pub fn summarize(events: &[JournalEvent]) -> RunSummary {
    let mut s = RunSummary::default();
    for e in events {
        match e {
            JournalEvent::RunStart { workload, num_gpus, .. } => {
                s.workload = Some(workload.clone());
                s.num_gpus = Some(*num_gpus);
            }
            JournalEvent::Step { mode, phases, .. } => {
                s.steps += 1;
                let bucket = match mode {
                    StepMode::Hot => {
                        s.hot_steps += 1;
                        &mut s.breakdown.hot
                    }
                    StepMode::Cold => {
                        s.cold_steps += 1;
                        &mut s.breakdown.cold
                    }
                };
                for (slot, v) in bucket.iter_mut().zip(phases.0) {
                    *slot += v;
                }
            }
            JournalEvent::Sync { bytes, phases, .. } => {
                s.sync_count += 1;
                s.sync_bytes += bytes;
                for (slot, v) in s.breakdown.sync.iter_mut().zip(phases.0) {
                    *slot += v;
                }
            }
            JournalEvent::Charge { phases, .. } => {
                for (slot, v) in s.breakdown.other.iter_mut().zip(phases.0) {
                    *slot += v;
                }
            }
            JournalEvent::Eval { step, test_loss, test_accuracy, rate, .. } => {
                s.evals.push(EvalRow {
                    step: *step,
                    test_loss: *test_loss,
                    test_accuracy: *test_accuracy,
                    rate: *rate,
                });
            }
            JournalEvent::Fault { .. } => s.faults += 1,
            JournalEvent::Recovery { .. } => s.recoveries += 1,
            JournalEvent::NodeJoin { .. } => s.node_joins += 1,
            JournalEvent::NodeLost { .. } => s.node_losses += 1,
            JournalEvent::Reshard { phases, .. } => {
                s.reshards += 1;
                for (slot, v) in s.breakdown.other.iter_mut().zip(phases.0) {
                    *slot += v;
                }
            }
            JournalEvent::RunEnd { simulated_seconds, final_accuracy, interrupted, .. } => {
                s.reported_simulated_seconds = Some(*simulated_seconds);
                s.final_accuracy = Some(*final_accuracy);
                s.interrupted = *interrupted;
            }
            JournalEvent::ServeStart { workload, workers, .. } => {
                if s.workload.is_none() {
                    s.workload = Some(workload.clone());
                }
                s.serve.get_or_insert_with(ServeSummary::default).workers = *workers;
            }
            JournalEvent::ServeBatch { hits, misses, phases, .. } => {
                let serve = s.serve.get_or_insert_with(ServeSummary::default);
                serve.batches += 1;
                serve.hits += hits;
                serve.misses += misses;
                for (slot, v) in serve.phase_seconds.iter_mut().zip(phases.0) {
                    *slot += v;
                }
            }
            JournalEvent::ServeEnd {
                completed,
                rejected,
                p50_ms,
                p95_ms,
                p99_ms,
                throughput_rps,
                hit_rate,
                simulated_seconds,
            } => {
                let serve = s.serve.get_or_insert_with(ServeSummary::default);
                serve.completed = *completed;
                serve.rejected = *rejected;
                serve.p50_ms = *p50_ms;
                serve.p95_ms = *p95_ms;
                serve.p99_ms = *p99_ms;
                serve.throughput_rps = *throughput_rps;
                serve.hit_rate = *hit_rate;
                serve.simulated_seconds = *simulated_seconds;
            }
            JournalEvent::Mark { .. } => {}
            JournalEvent::Alert { step, rule, message, .. } => {
                s.alerts.push(AlertRow {
                    step: *step,
                    rule: rule.clone(),
                    message: message.clone(),
                });
            }
        }
    }
    s
}

/// Folds a tagged (usually merged, multi-node) stream into a
/// [`RunSummary`] whose `per_node` section breaks activity down by
/// originating node.
pub fn summarize_tagged(tagged: &[TaggedEvent]) -> RunSummary {
    let events: Vec<JournalEvent> = tagged.iter().map(|t| t.event.clone()).collect();
    let mut s = summarize(&events);
    let mut nodes: std::collections::BTreeMap<u64, NodeSummary> = Default::default();
    for t in tagged {
        let n = nodes
            .entry(t.node_id)
            .or_insert_with(|| NodeSummary { node_id: t.node_id, ..Default::default() });
        n.events += 1;
        if matches!(t.event, JournalEvent::Mark { .. }) {
            n.marks += 1;
        }
        if let Some(p) = t.event.phases() {
            n.charged_seconds += p.total();
        }
    }
    s.per_node = nodes.into_values().collect();
    s
}

fn fmt_rate(rate: Option<u32>) -> String {
    match rate {
        Some(r) => format!("R({r})"),
        None => "-".into(),
    }
}

/// Renders the Fig.-14-style phase-breakdown table plus run header and
/// evaluation history.
pub fn render(s: &RunSummary) -> String {
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };

    push(&mut out, format!("run: {}", s.workload.as_deref().unwrap_or("<unknown>")));
    push(
        &mut out,
        format!(
            "steps: {} ({} hot / {} cold)   gpus: {}   syncs: {} ({} bytes)   faults: {}   recoveries: {}",
            s.steps,
            s.hot_steps,
            s.cold_steps,
            s.num_gpus.map(|g| g.to_string()).unwrap_or_else(|| "?".into()),
            s.sync_count,
            s.sync_bytes,
            s.faults,
            s.recoveries,
        ),
    );
    if s.node_joins + s.node_losses + s.reshards > 0 {
        push(
            &mut out,
            format!(
                "membership: {} node joins   {} node losses   {} reshards",
                s.node_joins, s.node_losses, s.reshards,
            ),
        );
    }
    if s.interrupted {
        push(&mut out, "note: run was interrupted (journal covers a partial run)".into());
    }
    push(&mut out, String::new());

    // Fig.-14-style breakdown: one row per phase, columns split the
    // simulated seconds by where they were spent.
    let total = s.breakdown.grand_total();
    push(
        &mut out,
        format!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>11} {:>7}",
            "phase", "hot (s)", "cold (s)", "sync (s)", "other (s)", "total (s)", "%"
        ),
    );
    push(&mut out, "-".repeat(82));
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let row_total = s.breakdown.phase_total(i);
        if row_total == 0.0 {
            continue;
        }
        let pct = if total > 0.0 { 100.0 * row_total / total } else { 0.0 };
        push(
            &mut out,
            format!(
                "{:<18} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>11.4} {:>6.1}%",
                phase.to_string(),
                s.breakdown.hot[i],
                s.breakdown.cold[i],
                s.breakdown.sync[i],
                s.breakdown.other[i],
                row_total,
                pct,
            ),
        );
    }
    push(&mut out, "-".repeat(82));
    push(
        &mut out,
        format!(
            "{:<18} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>11.4} {:>6.1}%",
            "total",
            s.breakdown.hot.iter().sum::<f64>(),
            s.breakdown.cold.iter().sum::<f64>(),
            s.breakdown.sync.iter().sum::<f64>(),
            s.breakdown.other.iter().sum::<f64>(),
            total,
            100.0,
        ),
    );
    if let Some(reported) = s.reported_simulated_seconds {
        push(
            &mut out,
            format!(
                "journalled {:.6}s vs reported {:.6}s (delta {:+.2e}s)",
                total,
                reported,
                total - reported,
            ),
        );
    }

    if !s.evals.is_empty() {
        push(&mut out, String::new());
        push(
            &mut out,
            format!(
                "{:<10} {:>12} {:>14} {:>8}",
                "eval@step", "test loss", "test accuracy", "rate"
            ),
        );
        for e in &s.evals {
            push(
                &mut out,
                format!(
                    "{:<10} {:>12.5} {:>14.5} {:>8}",
                    e.step,
                    e.test_loss,
                    e.test_accuracy,
                    fmt_rate(e.rate),
                ),
            );
        }
    }
    if let Some(acc) = s.final_accuracy {
        push(&mut out, format!("final accuracy: {acc:.5}"));
    }

    if !s.per_node.is_empty() {
        push(&mut out, String::new());
        push(&mut out, "per node".into());
        push(
            &mut out,
            format!("{:<10} {:>8} {:>8} {:>14}", "node", "events", "marks", "charged (s)"),
        );
        for n in &s.per_node {
            let label = if n.node_id == 0 {
                "0 (coord)".to_string()
            } else {
                format!("{} (w{})", n.node_id, n.node_id - 1)
            };
            push(
                &mut out,
                format!("{:<10} {:>8} {:>8} {:>14.6}", label, n.events, n.marks, n.charged_seconds,),
            );
        }
    }

    if !s.alerts.is_empty() {
        push(&mut out, String::new());
        push(&mut out, format!("alerts ({} fired)", s.alerts.len()));
        for a in &s.alerts {
            push(&mut out, format!("  @{:<8} [{}] {}", a.step, a.rule, a.message));
        }
    }

    if let Some(serve) = &s.serve {
        push(&mut out, String::new());
        push(&mut out, "serving".into());
        push(
            &mut out,
            format!(
                "workers: {}   batches: {}   completed: {}   rejected: {}",
                serve.workers, serve.batches, serve.completed, serve.rejected,
            ),
        );
        let lookups = serve.hits + serve.misses;
        push(
            &mut out,
            format!(
                "cache: {} gpu / {} cpu of {} lookups (hit rate {:.4})",
                serve.hits, serve.misses, lookups, serve.hit_rate,
            ),
        );
        push(
            &mut out,
            format!(
                "latency: p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms   throughput: {:.1} req/s   makespan: {:.6} s",
                serve.p50_ms, serve.p95_ms, serve.p99_ms, serve.throughput_rps,
                serve.simulated_seconds,
            ),
        );
        for (phase, secs) in Phase::ALL.iter().zip(serve.phase_seconds) {
            if secs != 0.0 {
                push(&mut out, format!("  {:<18} {:>12.6} s busy", phase.to_string(), secs));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::PhaseSeconds;

    fn sample() -> Vec<JournalEvent> {
        vec![
            JournalEvent::RunStart {
                workload: "w".into(),
                seed: 1,
                num_gpus: 2,
                workers: 1,
                epochs: 1,
                minibatch_size: 8,
                initial_rate: 100,
                lookahead: 0,
                stale_skip: 0.0,
            },
            JournalEvent::Step {
                step: 1,
                mode: StepMode::Hot,
                rate: 100,
                loss: 0.7,
                phases: PhaseSeconds([0.1, 0.2, 0.3, 0.05, 0.0, 0.15, 0.0, 0.01]),
            },
            JournalEvent::Step {
                step: 2,
                mode: StepMode::Cold,
                rate: 100,
                loss: 0.6,
                phases: PhaseSeconds([0.4, 0.2, 0.3, 0.05, 0.2, 0.15, 0.0, 0.01]),
            },
            JournalEvent::Sync {
                step: 2,
                direction: "write-back".into(),
                bytes: 2048,
                phases: PhaseSeconds([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.25, 0.0]),
            },
            JournalEvent::Charge {
                step: 2,
                label: "reshard".into(),
                phases: PhaseSeconds([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.125]),
            },
            JournalEvent::Eval {
                step: 2,
                test_loss: 0.65,
                test_accuracy: 0.58,
                rate: Some(50),
                hot_steps: 1,
                cold_steps: 1,
                sim_seconds: 2.495,
            },
            JournalEvent::RunEnd {
                steps: 2,
                hot_steps: 1,
                cold_steps: 1,
                transitions: 1,
                simulated_seconds: 2.495,
                final_accuracy: 0.58,
                final_rate: Some(50),
                interrupted: false,
            },
        ]
    }

    #[test]
    fn summary_splits_phases_by_category() {
        let s = summarize(&sample());
        assert_eq!(s.steps, 2);
        assert_eq!(s.hot_steps, 1);
        assert_eq!(s.cold_steps, 1);
        assert_eq!(s.sync_count, 1);
        assert_eq!(s.sync_bytes, 2048);
        // EmbedForward index 0: hot charged 0.1, cold 0.4.
        assert!((s.breakdown.hot[0] - 0.1).abs() < 1e-12);
        assert!((s.breakdown.cold[0] - 0.4).abs() < 1e-12);
        // EmbedSync index 6 entirely under sync.
        assert!((s.breakdown.sync[6] - 0.25).abs() < 1e-12);
        // Framework "other" from the reshard charge.
        assert!((s.breakdown.other[7] - 0.125).abs() < 1e-12);
        assert_eq!(s.evals.len(), 1);
        assert_eq!(s.evals[0].rate, Some(50));
    }

    #[test]
    fn journalled_seconds_match_run_end() {
        let s = summarize(&sample());
        let reported = s.reported_simulated_seconds.unwrap();
        assert!(
            (s.journalled_seconds() - reported).abs() < 1e-9,
            "{} vs {reported}",
            s.journalled_seconds()
        );
    }

    fn serve_sample() -> Vec<JournalEvent> {
        vec![
            JournalEvent::ServeStart {
                workload: "w".into(),
                seed: 1,
                workers: 2,
                max_batch: 16,
                max_delay_us: 2000,
                queue_cap: 64,
            },
            JournalEvent::ServeBatch {
                batch: 1,
                worker: 0,
                size: 16,
                start_s: 0.001,
                hits: 60,
                misses: 4,
                phases: PhaseSeconds([1e-4, 2e-4, 0.0, 0.0, 5e-5, 0.0, 0.0, 5e-5]),
            },
            JournalEvent::ServeBatch {
                batch: 2,
                worker: 1,
                size: 10,
                start_s: 0.003,
                hits: 38,
                misses: 2,
                phases: PhaseSeconds([1e-4, 1e-4, 0.0, 0.0, 0.0, 0.0, 0.0, 5e-5]),
            },
            JournalEvent::ServeEnd {
                completed: 26,
                rejected: 1,
                p50_ms: 1.2,
                p95_ms: 2.4,
                p99_ms: 2.9,
                throughput_rps: 6500.0,
                hit_rate: 0.9423,
                simulated_seconds: 0.004,
            },
        ]
    }

    #[test]
    fn summary_aggregates_serve_events() {
        let s = summarize(&serve_sample());
        let serve = s.serve.as_ref().expect("serve section present");
        assert_eq!(serve.workers, 2);
        assert_eq!(serve.batches, 2);
        assert_eq!(serve.completed, 26);
        assert_eq!(serve.rejected, 1);
        assert_eq!(serve.hits, 98);
        assert_eq!(serve.misses, 6);
        assert!((serve.phase_seconds[0] - 2e-4).abs() < 1e-15);
        assert_eq!(s.workload.as_deref(), Some("w"));
        // A pure-train journal has no serve section.
        assert!(summarize(&sample()).serve.is_none());
    }

    #[test]
    fn render_contains_serve_section() {
        let s = summarize(&serve_sample());
        let text = render(&s);
        assert!(text.contains("serving"));
        assert!(text.contains("hit rate 0.9423"));
        assert!(text.contains("p50 1.200 ms"));
        assert!(text.contains("embed-forward"));
    }

    #[test]
    fn tagged_summary_breaks_down_per_node_and_collects_alerts() {
        let mut tagged: Vec<TaggedEvent> = sample()
            .into_iter()
            .enumerate()
            .map(|(i, event)| TaggedEvent { node_id: 0, seq: i as u64, event })
            .collect();
        tagged.push(TaggedEvent {
            node_id: 2,
            seq: 0,
            event: JournalEvent::Mark { step: 1, label: "task".into(), detail: "".into() },
        });
        tagged.push(TaggedEvent {
            node_id: 0,
            seq: 99,
            event: JournalEvent::Alert {
                step: 2,
                rule: "heartbeat-gap".into(),
                message: "node 1 lost".into(),
                value: 3.0,
                threshold: 2.0,
            },
        });
        let s = summarize_tagged(&tagged);
        assert_eq!(s.per_node.len(), 2);
        assert_eq!(s.per_node[0].node_id, 0);
        assert!((s.per_node[0].charged_seconds - s.journalled_seconds()).abs() < 1e-12);
        assert_eq!(s.per_node[1].node_id, 2);
        assert_eq!(s.per_node[1].marks, 1);
        assert_eq!(s.per_node[1].charged_seconds, 0.0);
        assert_eq!(s.alerts.len(), 1);
        let text = render(&s);
        assert!(text.contains("per node"));
        assert!(text.contains("2 (w1)"));
        assert!(text.contains("alerts (1 fired)"));
        assert!(text.contains("[heartbeat-gap]"));
        // Plain summaries carry no per-node section.
        assert!(summarize(&sample()).per_node.is_empty());
    }

    #[test]
    fn render_contains_breakdown_and_evals() {
        let s = summarize(&sample());
        let text = render(&s);
        assert!(text.contains("embed-forward"));
        assert!(text.contains("embed-sync"));
        assert!(text.contains("R(50)"));
        assert!(text.contains("total"));
        assert!(text.contains("final accuracy"));
        assert!(text.contains("dense-forward"));
    }
}
