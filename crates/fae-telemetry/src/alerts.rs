//! Declarative SLO alerting over the journal stream.
//!
//! An [`AlertEngine`] is a small set of latched rules evaluated against
//! every journal event as it is emitted. A rule that crosses its
//! threshold fires exactly once, and the firing is itself a
//! [`JournalEvent::Alert`] — so alerts land in the journal, the merged
//! trace, `fae report` and `fae top` with no side channel.
//!
//! Rule grammar (comma-separated spec string, see DESIGN.md §13):
//!
//! ```text
//! heartbeat-gap>G     fire when a node_lost event's missed-deadline
//!                     count (suspicion) reaches G (0 = any loss,
//!                     including hard disconnects)
//! reshard-storm>K     fire when the run's cumulative reshard count
//!                     reaches K
//! hit-rate<X          fire when the serve hit rate drops below X
//!                     (cumulative over batches, and again at serve_end)
//! steps-per-sec<S     fire when training throughput (steps per
//!                     simulated second, measured at eval/run_end)
//!                     drops below S
//! ```
//!
//! Thresholds are inclusive on the crossing side: `>` fires at or above,
//! `<` fires strictly below. The `steps-per-sec` floor is usually
//! derived from a baseline JSON (`steps_per_sec` key) via
//! [`steps_floor_from_baseline`].

use serde_json::Value;

use crate::journal::JournalEvent;

/// Minimum cumulative lookups before the running serve hit rate is
/// judged — avoids firing on the noise of the first couple of batches.
const HIT_RATE_MIN_LOOKUPS: u64 = 256;

/// One alert rule kind with its threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlertRule {
    /// `heartbeat-gap>G`: a node was lost after >= G missed deadlines.
    HeartbeatGap {
        /// Missed-deadline count at which a loss is alert-worthy.
        min_suspicion: f64,
    },
    /// `reshard-storm>K`: cumulative reshards reached K.
    ReshardStorm {
        /// Reshard count that constitutes a storm.
        max_reshards: f64,
    },
    /// `hit-rate<X`: serve hit rate dropped below X.
    HitRateFloor {
        /// The floor (fraction in [0, 1]).
        floor: f64,
    },
    /// `steps-per-sec<S`: training throughput dropped below S.
    StepsPerSecFloor {
        /// The floor, steps per simulated second.
        floor: f64,
    },
}

impl AlertRule {
    fn id(&self) -> &'static str {
        match self {
            AlertRule::HeartbeatGap { .. } => "heartbeat-gap",
            AlertRule::ReshardStorm { .. } => "reshard-storm",
            AlertRule::HitRateFloor { .. } => "hit-rate",
            AlertRule::StepsPerSecFloor { .. } => "steps-per-sec",
        }
    }

    fn threshold(&self) -> f64 {
        match *self {
            AlertRule::HeartbeatGap { min_suspicion } => min_suspicion,
            AlertRule::ReshardStorm { max_reshards } => max_reshards,
            AlertRule::HitRateFloor { floor } => floor,
            AlertRule::StepsPerSecFloor { floor } => floor,
        }
    }
}

struct RuleState {
    rule: AlertRule,
    fired: bool,
}

/// Evaluates a fixed rule set against the event stream, latching each
/// rule after its first firing.
pub struct AlertEngine {
    rules: Vec<RuleState>,
    reshards: u64,
    serve_hits: u64,
    serve_misses: u64,
}

impl std::fmt::Debug for AlertEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlertEngine({} rules)", self.rules.len())
    }
}

impl AlertEngine {
    /// An engine with no rules (observes everything, fires nothing).
    pub fn empty() -> Self {
        AlertEngine { rules: Vec::new(), reshards: 0, serve_hits: 0, serve_misses: 0 }
    }

    /// Parses a comma-separated rule spec (see the module docs for the
    /// grammar). An empty spec yields an empty engine.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut engine = AlertEngine::empty();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            engine.push(parse_rule(part)?);
        }
        Ok(engine)
    }

    /// Adds one rule.
    pub fn push(&mut self, rule: AlertRule) {
        self.rules.push(RuleState { rule, fired: false });
    }

    /// Whether any rule is configured.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Feeds one event through the rules; returns the alerts that fire.
    /// Alert events themselves are never evaluated (no self-triggering).
    pub fn observe(&mut self, event: &JournalEvent) -> Vec<JournalEvent> {
        if matches!(event, JournalEvent::Alert { .. }) {
            return Vec::new();
        }
        // Update cumulative state first so rules see it.
        match event {
            JournalEvent::Reshard { .. } => self.reshards += 1,
            JournalEvent::ServeBatch { hits, misses, .. } => {
                self.serve_hits += hits;
                self.serve_misses += misses;
            }
            _ => {}
        }
        let mut fired = Vec::new();
        for state in &mut self.rules {
            if state.fired {
                continue;
            }
            if let Some(alert) =
                evaluate(&state.rule, event, self.reshards, self.serve_hits, self.serve_misses)
            {
                state.fired = true;
                fired.push(alert);
            }
        }
        fired
    }
}

fn alert(step: u64, rule: &AlertRule, message: String, value: f64) -> JournalEvent {
    JournalEvent::Alert {
        step,
        rule: rule.id().into(),
        message,
        value,
        threshold: rule.threshold(),
    }
}

fn evaluate(
    rule: &AlertRule,
    event: &JournalEvent,
    reshards: u64,
    hits: u64,
    misses: u64,
) -> Option<JournalEvent> {
    match (rule, event) {
        (
            AlertRule::HeartbeatGap { min_suspicion },
            JournalEvent::NodeLost { step, node, suspicion },
        ) => {
            let gap = *suspicion as f64;
            (gap >= *min_suspicion).then(|| {
                alert(
                    *step,
                    rule,
                    format!("node {node} lost after {suspicion} missed deadlines"),
                    gap,
                )
            })
        }
        (AlertRule::ReshardStorm { max_reshards }, JournalEvent::Reshard { step, .. }) => {
            let count = reshards as f64;
            (count >= *max_reshards)
                .then(|| alert(*step, rule, format!("{reshards} reshards this run"), count))
        }
        (AlertRule::HitRateFloor { floor }, JournalEvent::ServeBatch { batch, .. }) => {
            let total = hits + misses;
            if total < HIT_RATE_MIN_LOOKUPS {
                return None;
            }
            let rate = hits as f64 / total as f64;
            (rate < *floor).then(|| {
                alert(*batch, rule, format!("running hit rate {rate:.4} below floor"), rate)
            })
        }
        (AlertRule::HitRateFloor { floor }, JournalEvent::ServeEnd { hit_rate, .. }) => {
            (*hit_rate < *floor).then(|| {
                alert(0, rule, format!("final hit rate {hit_rate:.4} below floor"), *hit_rate)
            })
        }
        (AlertRule::StepsPerSecFloor { floor }, JournalEvent::Eval { step, sim_seconds, .. }) => {
            if *sim_seconds <= 0.0 {
                return None;
            }
            let sps = *step as f64 / sim_seconds;
            (sps < *floor).then(|| {
                alert(*step, rule, format!("throughput {sps:.2} steps/s below floor"), sps)
            })
        }
        (
            AlertRule::StepsPerSecFloor { floor },
            JournalEvent::RunEnd { steps, simulated_seconds, .. },
        ) => {
            if *simulated_seconds <= 0.0 {
                return None;
            }
            let sps = *steps as f64 / simulated_seconds;
            (sps < *floor).then(|| {
                alert(*steps, rule, format!("final throughput {sps:.2} steps/s below floor"), sps)
            })
        }
        _ => None,
    }
}

fn parse_rule(part: &str) -> Result<AlertRule, String> {
    let (name, cmp, value) = if let Some((n, v)) = part.split_once('>') {
        (n.trim(), '>', v.trim())
    } else if let Some((n, v)) = part.split_once('<') {
        (n.trim(), '<', v.trim())
    } else {
        return Err(format!("alert rule '{part}': expected NAME>VALUE or NAME<VALUE"));
    };
    let value: f64 =
        value.parse().map_err(|_| format!("alert rule '{part}': bad threshold '{value}'"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("alert rule '{part}': threshold must be finite and >= 0"));
    }
    match (name, cmp) {
        ("heartbeat-gap", '>') => Ok(AlertRule::HeartbeatGap { min_suspicion: value }),
        ("reshard-storm", '>') => Ok(AlertRule::ReshardStorm { max_reshards: value }),
        ("hit-rate", '<') => Ok(AlertRule::HitRateFloor { floor: value }),
        ("steps-per-sec", '<') => Ok(AlertRule::StepsPerSecFloor { floor: value }),
        ("heartbeat-gap" | "reshard-storm", '<') => {
            Err(format!("alert rule '{part}': {name} takes '>' (ceiling)"))
        }
        ("hit-rate" | "steps-per-sec", '>') => {
            Err(format!("alert rule '{part}': {name} takes '<' (floor)"))
        }
        _ => Err(format!("alert rule '{part}': unknown rule '{name}'")),
    }
}

/// Derives a `steps-per-sec` floor from a baseline JSON text: the floor
/// is `steps_per_sec * (1 - allowed_regression)`. The baseline must
/// carry a top-level numeric `steps_per_sec` key.
pub fn steps_floor_from_baseline(json: &str, allowed_regression: f64) -> Result<f64, String> {
    let v: Value = serde_json::from_str(json).map_err(|e| format!("baseline: {e}"))?;
    let sps = v
        .get("steps_per_sec")
        .and_then(Value::as_f64)
        .ok_or("baseline: missing numeric \"steps_per_sec\"")?;
    if !(0.0..=1.0).contains(&allowed_regression) {
        return Err("baseline: allowed regression must be in [0, 1]".into());
    }
    Ok(sps * (1.0 - allowed_regression))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lost(step: u64, suspicion: u64) -> JournalEvent {
        JournalEvent::NodeLost { step, node: 1, suspicion }
    }

    #[test]
    fn spec_parses_all_four_rules() {
        let e =
            AlertEngine::parse("heartbeat-gap>2, reshard-storm>3,hit-rate<0.5,steps-per-sec<10")
                .expect("spec");
        assert_eq!(e.rules.len(), 4);
        assert_eq!(e.rules[0].rule, AlertRule::HeartbeatGap { min_suspicion: 2.0 });
        assert_eq!(e.rules[3].rule, AlertRule::StepsPerSecFloor { floor: 10.0 });
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(AlertEngine::parse("heartbeat-gap<2").is_err());
        assert!(AlertEngine::parse("hit-rate>0.5").is_err());
        assert!(AlertEngine::parse("mystery>1").is_err());
        assert!(AlertEngine::parse("heartbeat-gap>x").is_err());
        assert!(AlertEngine::parse("heartbeat-gap").is_err());
        assert!(AlertEngine::parse("").expect("empty ok").is_empty());
    }

    #[test]
    fn heartbeat_gap_fires_once_and_latches() {
        let mut e = AlertEngine::parse("heartbeat-gap>2").unwrap();
        assert!(e.observe(&lost(5, 1)).is_empty(), "below threshold");
        let fired = e.observe(&lost(6, 3));
        assert_eq!(fired.len(), 1);
        match &fired[0] {
            JournalEvent::Alert { rule, value, threshold, step, .. } => {
                assert_eq!(rule, "heartbeat-gap");
                assert_eq!(*value, 3.0);
                assert_eq!(*threshold, 2.0);
                assert_eq!(*step, 6);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.observe(&lost(7, 5)).is_empty(), "latched after first firing");
    }

    #[test]
    fn hard_disconnect_fires_a_zero_threshold_gap_rule() {
        let mut e = AlertEngine::parse("heartbeat-gap>0").unwrap();
        assert_eq!(e.observe(&lost(3, 0)).len(), 1);
    }

    #[test]
    fn reshard_storm_counts_cumulatively() {
        let mut e = AlertEngine::parse("reshard-storm>2").unwrap();
        let reshard =
            |step| JournalEvent::Reshard { step, node: 0, live: 1, phases: Default::default() };
        assert!(e.observe(&reshard(1)).is_empty());
        assert_eq!(e.observe(&reshard(2)).len(), 1);
    }

    #[test]
    fn steps_per_sec_floor_fires_on_run_end() {
        let mut e = AlertEngine::parse("steps-per-sec<100").unwrap();
        let end = JournalEvent::RunEnd {
            steps: 50,
            hot_steps: 25,
            cold_steps: 25,
            transitions: 1,
            simulated_seconds: 1.0,
            final_accuracy: 0.5,
            final_rate: None,
            interrupted: false,
        };
        let fired = e.observe(&end);
        assert_eq!(fired.len(), 1);
        match &fired[0] {
            JournalEvent::Alert { value, .. } => assert_eq!(*value, 50.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hit_rate_floor_waits_for_enough_lookups() {
        let mut e = AlertEngine::parse("hit-rate<0.9").unwrap();
        let batch = |b, hits, misses| JournalEvent::ServeBatch {
            batch: b,
            worker: 0,
            size: 8,
            start_s: 0.0,
            hits,
            misses,
            phases: Default::default(),
        };
        assert!(e.observe(&batch(1, 10, 90)).is_empty(), "too few lookups to judge");
        assert_eq!(e.observe(&batch(2, 30, 170)).len(), 1, "300 lookups at 13% fires");
    }

    #[test]
    fn alerts_do_not_trigger_rules() {
        let mut e = AlertEngine::parse("heartbeat-gap>0").unwrap();
        let a = e.observe(&lost(1, 1)).remove(0);
        assert!(e.observe(&a).is_empty());
    }

    #[test]
    fn baseline_floor_derivation() {
        let floor = steps_floor_from_baseline("{\"steps_per_sec\": 200.0}", 0.1).unwrap();
        assert!((floor - 180.0).abs() < 1e-12);
        assert!(steps_floor_from_baseline("{}", 0.1).is_err());
        assert!(steps_floor_from_baseline("{\"steps_per_sec\": 1.0}", 2.0).is_err());
    }
}
