//! Structured telemetry for the FAE training pipeline.
//!
//! Four pieces, all zero-dependency (std + the vendored serde shims):
//!
//! * [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   log₂-scale histograms, plus per-path span aggregates;
//! * [`span`] — RAII guards measuring real wall-clock seconds and
//!   explicitly-attributed simulated seconds per pipeline stage;
//! * [`journal`] — a crash-safe per-step JSONL event journal whose
//!   per-phase simulated seconds sum exactly to the run's `Timeline`;
//! * [`trace`] + [`report`] — consumers of the journal: a deterministic
//!   Chrome trace-event (Perfetto) exporter and the Fig.-14-style phase
//!   breakdown behind `fae report`.
//!
//! Everything hangs off the [`Telemetry`] handle: a cheap, cloneable,
//! global-free capability that is threaded through the trainer,
//! scheduler, replicator, calibrator and fault layer. A
//! [`Telemetry::disabled`] handle (also `Default`) makes every call a
//! no-op, so instrumented code paths cost nothing when observability is
//! off and call sites never need `if let Some(telemetry)` guards.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
pub mod journal;
pub mod merge;
pub mod metrics;
pub mod report;
pub mod span;
pub mod top;
pub mod trace;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

pub use alerts::{steps_floor_from_baseline, AlertEngine, AlertRule};
pub use journal::{
    parse_journal, parse_tagged_journal, read_journal, read_tagged_journal, JournalEvent,
    JournalWriter, PhaseSeconds, StepMode, TaggedEvent,
};
pub use merge::{check_invariant, merge_tagged, MergeStats, MergedInvariant, ShipLedger};
pub use metrics::{Histogram, MetricsRegistry, SpanStat};
pub use report::{render, summarize, summarize_tagged, PhaseBreakdown, RunSummary, ServeSummary};
pub use span::SpanGuard;
pub use top::render_top;
pub use trace::{chrome_trace, merged_chrome_trace};

struct Inner {
    metrics: Mutex<MetricsRegistry>,
    journal: Mutex<Option<JournalWriter>>,
    journal_path: Option<PathBuf>,
    /// Per-wire-node sidecar writers for shipped worker journals,
    /// created lazily next to the main journal file.
    sidecars: Mutex<BTreeMap<u64, JournalWriter>>,
    alerts: Mutex<AlertEngine>,
    events: Mutex<Vec<JournalEvent>>,
    /// Tagged JSONL lines of everything this handle saw (own emissions
    /// plus shipped worker lines), retained when `retain_events` is on —
    /// the source for live observers and in-process merged traces.
    lines: Mutex<Vec<String>>,
    seq: Mutex<u64>,
    node_id: u64,
    retain_events: bool,
    progress: bool,
    progress_every: u64,
}

/// The telemetry capability handle.
///
/// Cloning is cheap (an `Arc` bump); a disabled handle is a `None` and
/// every operation on it returns immediately. Interior mutability means
/// instrumented code takes `&Telemetry` (or a clone) without threading
/// `&mut` through the whole call tree.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Telemetry(disabled)"),
            Some(inner) => {
                let journalling = inner.journal.lock().map(|j| j.is_some()).unwrap_or(false);
                write!(f, "Telemetry(enabled, journal: {journalling})")
            }
        }
    }
}

impl Telemetry {
    /// A no-op handle: every call returns immediately, nothing is
    /// recorded. This is also the `Default`.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// Starts configuring an enabled handle.
    pub fn builder() -> TelemetryBuilder {
        TelemetryBuilder::default()
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to the counter `name`.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.0 {
            if let Ok(mut m) = inner.metrics.lock() {
                m.counter_add(name, n);
            }
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.0 {
            if let Ok(mut m) = inner.metrics.lock() {
                m.gauge_set(name, v);
            }
        }
    }

    /// Records an observation into the histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.0 {
            if let Ok(mut m) = inner.metrics.lock() {
                m.observe(name, v);
            }
        }
    }

    /// Records one completed span occurrence (used by [`SpanGuard`]).
    pub fn span_record(&self, path: &str, real_s: f64, sim_s: f64) {
        if let Some(inner) = &self.0 {
            if let Ok(mut m) = inner.metrics.lock() {
                m.span_record(path, real_s, sim_s);
            }
        }
    }

    /// Opens a span at `path`; real seconds are measured until the guard
    /// drops, simulated seconds are attributed via
    /// [`SpanGuard::add_sim`].
    pub fn span(&self, path: &str) -> SpanGuard {
        SpanGuard::open(self.clone(), path)
    }

    /// Emits one journal event: tagged with this handle's node id and
    /// the next sequence number, appended (and flushed) to the journal
    /// file if one is attached, retained in memory when configured,
    /// echoed as a progress line when `--progress` is on, and fed to the
    /// alert engine — any rule that fires is emitted right behind it as
    /// an [`JournalEvent::Alert`]. Journal write errors are reported to
    /// stderr once per event, never fatal — losing telemetry must not
    /// kill training.
    pub fn emit(&self, event: &JournalEvent) {
        let Some(inner) = &self.0 else { return };
        let seq = match inner.seq.lock() {
            Ok(mut s) => {
                let v = *s;
                *s += 1;
                v
            }
            Err(_) => 0,
        };
        let tagged = TaggedEvent { node_id: inner.node_id, seq, event: event.clone() };
        let line = tagged.to_line();
        if let Ok(mut j) = inner.journal.lock() {
            if let Some(w) = j.as_mut() {
                if let Err(e) = w.write_raw_line(&line) {
                    eprintln!("telemetry: journal write failed: {e}");
                }
            }
        }
        if inner.retain_events {
            if let Ok(mut ev) = inner.events.lock() {
                ev.push(event.clone());
            }
            if let Ok(mut ls) = inner.lines.lock() {
                ls.push(line);
            }
        }
        if inner.progress {
            self.progress_line(inner, event);
        }
        // Evaluate alert rules last, with every lock released: firings
        // re-enter emit() as first-class journal events. Alerts never
        // trigger rules themselves, so this recursion is one level deep.
        let fired = match inner.alerts.lock() {
            Ok(mut engine) => engine.observe(event),
            Err(_) => Vec::new(),
        };
        for a in &fired {
            self.emit(a);
        }
    }

    /// Persists a batch of shipped worker journal lines (already tagged
    /// at their origin): appended verbatim to the per-node sidecar file
    /// `<journal>.node<k>.jsonl` next to the main journal, and retained
    /// for live observers when `retain_events` is on. `wire_node` is the
    /// worker's wire id (its journal tag is `wire_node + 1`).
    pub fn ship_lines(&self, wire_node: u64, batch: &str) {
        let Some(inner) = &self.0 else { return };
        let lines: Vec<&str> = batch.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.is_empty() {
            return;
        }
        if let Some(path) = sidecar_path(inner.journal_path.as_deref(), wire_node) {
            if let Ok(mut sidecars) = inner.sidecars.lock() {
                let writer = match sidecars.entry(wire_node) {
                    std::collections::btree_map::Entry::Occupied(e) => Some(e.into_mut()),
                    std::collections::btree_map::Entry::Vacant(e) => {
                        match JournalWriter::create_for_node(&path, wire_node + 1) {
                            Ok(w) => Some(e.insert(w)),
                            Err(err) => {
                                eprintln!("telemetry: sidecar {} failed: {err}", path.display());
                                None
                            }
                        }
                    }
                };
                if let Some(w) = writer {
                    for l in &lines {
                        if let Err(e) = w.write_raw_line(l) {
                            eprintln!("telemetry: sidecar write failed: {e}");
                        }
                    }
                }
            }
        }
        if inner.retain_events {
            if let Ok(mut ls) = inner.lines.lock() {
                ls.extend(lines.iter().map(|l| l.to_string()));
            }
        }
    }

    fn progress_line(&self, inner: &Inner, event: &JournalEvent) {
        match event {
            JournalEvent::RunStart { workload, num_gpus, epochs, initial_rate, .. } => {
                eprintln!(
                    "[fae] start workload={workload} gpus={num_gpus} epochs={epochs} rate=R({initial_rate})"
                );
            }
            JournalEvent::Step { step, mode, rate, loss, .. }
                if *step % inner.progress_every == 0 =>
            {
                let mode = match mode {
                    StepMode::Hot => "hot",
                    StepMode::Cold => "cold",
                };
                eprintln!("[fae] step {step} mode={mode} rate=R({rate}) loss={loss:.5}");
            }
            JournalEvent::Eval { step, test_loss, test_accuracy, rate, sim_seconds, .. } => {
                let rate = rate.map(|r| format!(" rate=R({r})")).unwrap_or_default();
                eprintln!(
                    "[fae] eval @{step} loss={test_loss:.5} acc={test_accuracy:.5}{rate} sim={sim_seconds:.3}s"
                );
            }
            JournalEvent::Fault { step, kind } => {
                eprintln!("[fae] fault @{step}: {kind}");
            }
            JournalEvent::Recovery { step, action, detail } => {
                eprintln!("[fae] recovery @{step}: {action} ({detail})");
            }
            JournalEvent::Alert { step, rule, message, .. } => {
                eprintln!("[fae] ALERT @{step}: {rule}: {message}");
            }
            JournalEvent::RunEnd { steps, hot_steps, cold_steps, simulated_seconds, .. } => {
                eprintln!(
                    "[fae] done: {steps} steps ({hot_steps} hot / {cold_steps} cold), {simulated_seconds:.3} simulated s"
                );
            }
            _ => {}
        }
    }

    /// Snapshot of the metrics registry (empty when disabled).
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.0 {
            None => MetricsRegistry::new(),
            Some(inner) => inner.metrics.lock().map(|m| m.clone()).unwrap_or_default(),
        }
    }

    /// The retained in-memory event stream (empty unless
    /// [`TelemetryBuilder::retain_events`] was set).
    pub fn events(&self) -> Vec<JournalEvent> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner.events.lock().map(|e| e.clone()).unwrap_or_default(),
        }
    }

    /// The retained tagged JSONL lines — this handle's own emissions
    /// plus every shipped worker line, in arrival order. Empty unless
    /// [`TelemetryBuilder::retain_events`] was set. This is what a live
    /// observer (`fae top <addr>`) is served.
    pub fn tagged_lines(&self) -> Vec<String> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner.lines.lock().map(|l| l.clone()).unwrap_or_default(),
        }
    }

    /// Paths of the per-node sidecar journals written so far (empty when
    /// no journal is attached or nothing was shipped).
    pub fn sidecar_paths(&self) -> Vec<PathBuf> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => match inner.sidecars.lock() {
                Ok(s) => s
                    .keys()
                    .filter_map(|k| sidecar_path(inner.journal_path.as_deref(), *k))
                    .collect(),
                Err(_) => Vec::new(),
            },
        }
    }

    /// Serializes the metrics snapshot as pretty JSON.
    pub fn metrics_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.metrics().to_json())
    }

    /// Writes the metrics snapshot to `path`: Prometheus text
    /// exposition when the extension is `.prom`, pretty JSON otherwise.
    pub fn write_metrics(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let text = if path.extension().is_some_and(|e| e == "prom") {
            self.metrics().to_prometheus()
        } else {
            self.metrics_json().map_err(io::Error::other)?
        };
        std::fs::write(path, text)
    }
}

/// The sidecar journal path for shipped worker `wire_node` next to the
/// main journal: `dist.jsonl` → `dist.node0.jsonl`.
fn sidecar_path(journal: Option<&Path>, wire_node: u64) -> Option<PathBuf> {
    let journal = journal?;
    let stem = journal.file_stem()?.to_string_lossy().into_owned();
    Some(journal.with_file_name(format!("{stem}.node{wire_node}.jsonl")))
}

/// Configures and builds an enabled [`Telemetry`] handle.
#[derive(Debug, Default)]
pub struct TelemetryBuilder {
    journal_path: Option<PathBuf>,
    node_id: u64,
    alerts: Option<AlertEngine>,
    retain_events: bool,
    progress: bool,
    progress_every: Option<u64>,
}

impl TelemetryBuilder {
    /// Attaches a JSONL journal at `path` (created/truncated on build).
    pub fn journal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Tags every emitted event with this originating node id (default
    /// 0, the single-process / coordinator convention).
    pub fn node_id(mut self, node_id: u64) -> Self {
        self.node_id = node_id;
        self
    }

    /// Attaches an alert engine; rule firings are emitted as
    /// `alert` journal events.
    pub fn alerts(mut self, engine: AlertEngine) -> Self {
        self.alerts = Some(engine);
        self
    }

    /// Keeps every emitted event in memory, retrievable via
    /// [`Telemetry::events`] — used by the trace exporter and tests.
    pub fn retain_events(mut self, yes: bool) -> Self {
        self.retain_events = yes;
        self
    }

    /// Echoes progress lines to stderr as events are emitted.
    pub fn progress(mut self, yes: bool) -> Self {
        self.progress = yes;
        self
    }

    /// Prints a progress line every `n` steps (default 100).
    pub fn progress_every(mut self, n: u64) -> Self {
        self.progress_every = Some(n.max(1));
        self
    }

    /// Builds the handle. Fails only if the journal file cannot be
    /// created.
    pub fn try_build(self) -> io::Result<Telemetry> {
        let journal = match &self.journal_path {
            None => None,
            Some(p) => Some(JournalWriter::create_for_node(p, self.node_id)?),
        };
        Ok(Telemetry(Some(Arc::new(Inner {
            metrics: Mutex::new(MetricsRegistry::new()),
            journal: Mutex::new(journal),
            journal_path: self.journal_path,
            sidecars: Mutex::new(BTreeMap::new()),
            alerts: Mutex::new(self.alerts.unwrap_or_else(AlertEngine::empty)),
            events: Mutex::new(Vec::new()),
            lines: Mutex::new(Vec::new()),
            seq: Mutex::new(0),
            node_id: self.node_id,
            retain_events: self.retain_events,
            progress: self.progress,
            progress_every: self.progress_every.unwrap_or(100),
        }))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.counter_add("c", 5);
        t.gauge_set("g", 1.0);
        t.observe("h", 1.0);
        t.emit(&JournalEvent::Fault { step: 1, kind: "k".into() });
        assert_eq!(t.metrics(), MetricsRegistry::new());
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_handle_records_and_clones_share_state() {
        let t = Telemetry::builder().retain_events(true).try_build().expect("telemetry");
        let t2 = t.clone();
        t.counter_add("c", 2);
        t2.counter_add("c", 3);
        t2.emit(&JournalEvent::Fault { step: 9, kind: "bitflip".into() });
        assert_eq!(t.metrics().counter("c"), 5);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn journal_file_receives_events() {
        let dir = std::env::temp_dir().join("fae-telemetry-lib");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("handle.jsonl");
        let t = Telemetry::builder().journal_path(&path).try_build().expect("telemetry");
        t.emit(&JournalEvent::Fault { step: 1, kind: "device-loss".into() });
        t.emit(&JournalEvent::Recovery {
            step: 1,
            action: "shrank-replicas".into(),
            detail: "2 -> 1".into(),
        });
        let events = read_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], JournalEvent::Fault { step: 1, kind: "device-loss".into() });
    }

    #[test]
    fn alert_firings_are_emitted_as_events() {
        let engine = AlertEngine::parse("heartbeat-gap>0").expect("spec");
        let t = Telemetry::builder().retain_events(true).alerts(engine).try_build().unwrap();
        t.emit(&JournalEvent::NodeLost { step: 4, node: 1, suspicion: 2 });
        let events = t.events();
        assert_eq!(events.len(), 2, "the loss plus the alert it fired");
        assert!(matches!(&events[1], JournalEvent::Alert { rule, .. } if rule == "heartbeat-gap"));
        // Tagged lines carry both, with consecutive seqs.
        let lines = t.tagged_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"seq\":1"));
    }

    #[test]
    fn shipped_lines_land_in_sidecars_and_retained_stream() {
        let dir = std::env::temp_dir().join("fae-telemetry-ship");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dist.jsonl");
        let t = Telemetry::builder()
            .journal_path(&path)
            .retain_events(true)
            .try_build()
            .expect("telemetry");
        let worker_line = TaggedEvent {
            node_id: 2,
            seq: 0,
            event: JournalEvent::Mark { step: 1, label: "join".into(), detail: "".into() },
        }
        .to_line();
        t.ship_lines(1, &format!("{worker_line}\n"));
        let sidecars = t.sidecar_paths();
        assert_eq!(sidecars.len(), 1);
        assert!(sidecars[0].ends_with("dist.node1.jsonl"));
        let shipped = read_tagged_journal(&sidecars[0]).unwrap();
        assert_eq!(shipped.len(), 1);
        assert_eq!(shipped[0].node_id, 2);
        assert_eq!(t.tagged_lines(), vec![worker_line]);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecars[0]).ok();
    }

    #[test]
    fn debug_formats_do_not_leak_internals() {
        assert_eq!(format!("{:?}", Telemetry::disabled()), "Telemetry(disabled)");
        let t = Telemetry::builder().try_build().expect("telemetry");
        assert_eq!(format!("{t:?}"), "Telemetry(enabled, journal: false)");
    }
}
