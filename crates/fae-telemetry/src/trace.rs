//! Chrome trace-event export (Perfetto / `chrome://tracing` compatible).
//!
//! The exporter renders the **simulated** `Timeline` of a recorded run
//! from its journal: each journal event that charges simulated time
//! becomes a run of `"X"` (complete) slices laid out along a single
//! monotonic simulated-time cursor starting at 0 µs. Tracks:
//!
//! * `cpu-resident` — CPU-side embedding work (cold-mode embed-forward),
//! * one `gpu<i>` track per simulated device (data-parallel replicas do
//!   identical work, so compute slices appear on every device track),
//! * `communication` — PCIe transfer, all-reduce, embedding sync,
//! * `framework` — framework overhead, retry backoff and other stalls.
//!
//! Because every coordinate comes from simulated seconds (never the host
//! clock) and pids/tids are fixed constants, two same-seed runs export
//! byte-identical traces — the determinism golden test relies on this.

use fae_sysmodel::Phase;
use serde_json::{Map, Value};

use crate::journal::{JournalEvent, StepMode, TaggedEvent};

/// The fixed pid under which all tracks are emitted. The merged
/// cross-node exporter uses one pid per originating node —
/// `node_id + 1`, so the coordinator keeps this pid — which Perfetto
/// renders as one track group per node.
pub const TRACE_PID: u64 = 1;

/// Tid of the CPU-resident track. Device tracks occupy
/// `TID_DEVICE0 .. TID_DEVICE0 + num_gpus`, then communication, then
/// framework.
pub const TID_CPU_RESIDENT: u64 = 1;

/// Tid of the first device track.
pub const TID_DEVICE0: u64 = 2;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Track {
    CpuResident,
    Devices,
    Comm,
    Framework,
}

fn track_for(phase: Phase, mode: Option<StepMode>) -> Track {
    match phase {
        Phase::Transfer | Phase::AllReduce | Phase::EmbedSync => Track::Comm,
        Phase::Framework => Track::Framework,
        // Embedding forward runs CPU-side except in hot (pure-GPU) steps.
        Phase::EmbedForward => match mode {
            Some(StepMode::Hot) => Track::Devices,
            _ => Track::CpuResident,
        },
        _ => Track::Devices,
    }
}

fn meta_event_pid(pid: u64, tid: u64, name: &str, arg: &str) -> Value {
    let mut args = Map::new();
    args.insert("name".into(), Value::String(arg.into()));
    let mut m = Map::new();
    m.insert("ph".into(), Value::String("M".into()));
    m.insert("pid".into(), serde_json::to_value(&pid));
    m.insert("tid".into(), serde_json::to_value(&tid));
    m.insert("name".into(), Value::String(name.into()));
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

fn meta_event(tid: u64, name: &str, arg: &str) -> Value {
    meta_event_pid(TRACE_PID, tid, name, arg)
}

fn slice_event(tid: u64, name: &str, cat: &str, ts_us: f64, dur_us: f64, args: Map) -> Value {
    let mut m = Map::new();
    m.insert("ph".into(), Value::String("X".into()));
    m.insert("pid".into(), serde_json::to_value(&TRACE_PID));
    m.insert("tid".into(), serde_json::to_value(&tid));
    m.insert("name".into(), Value::String(name.into()));
    m.insert("cat".into(), Value::String(cat.into()));
    m.insert("ts".into(), serde_json::to_value(&ts_us));
    m.insert("dur".into(), serde_json::to_value(&dur_us));
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

fn instant_event_pid(pid: u64, tid: u64, name: &str, cat: &str, ts_us: f64, args: Map) -> Value {
    let mut m = Map::new();
    m.insert("ph".into(), Value::String("i".into()));
    m.insert("pid".into(), serde_json::to_value(&pid));
    m.insert("tid".into(), serde_json::to_value(&tid));
    m.insert("name".into(), Value::String(name.into()));
    m.insert("cat".into(), Value::String(cat.into()));
    m.insert("ts".into(), serde_json::to_value(&ts_us));
    m.insert("s".into(), Value::String("p".into()));
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

fn instant_event(tid: u64, name: &str, cat: &str, ts_us: f64, args: Map) -> Value {
    instant_event_pid(TRACE_PID, tid, name, cat, ts_us, args)
}

/// Renders a journal as a Chrome trace-event JSON document.
///
/// The output is a complete `{"traceEvents": [...]}` object; write it to
/// a file and load it in Perfetto's JSON importer or `chrome://tracing`.
/// Errs only if the assembled in-memory `Value` fails to serialize.
pub fn chrome_trace(events: &[JournalEvent]) -> Result<String, serde_json::Error> {
    let out = trace_events(events);
    let mut root = Map::new();
    root.insert("traceEvents".into(), Value::Array(out));
    root.insert("displayTimeUnit".into(), Value::String("ms".into()));
    serde_json::to_string(&Value::Object(root))
}

/// The event array of [`chrome_trace`], reused by the merged exporter
/// for the coordinator's (pid [`TRACE_PID`]) track group.
fn trace_events(events: &[JournalEvent]) -> Vec<Value> {
    let (num_gpus, workers) = events
        .iter()
        .find_map(|e| match e {
            JournalEvent::RunStart { num_gpus, workers, .. } => {
                Some(((*num_gpus).max(1), (*workers).max(1)))
            }
            _ => None,
        })
        .unwrap_or((1, 1));
    let tid_comm = TID_DEVICE0 + num_gpus as u64;
    let tid_framework = tid_comm + 1;
    // Worker lanes sit past the framework track; only emitted when the
    // run used the parallel engine with more than one worker.
    let tid_worker0 = tid_framework + 1;
    // Serving worker lanes sit past the training worker lanes; only
    // emitted when the journal carries serve events.
    let serve_workers = events
        .iter()
        .find_map(|e| match e {
            JournalEvent::ServeStart { workers, .. } => Some((*workers).max(1)),
            _ => None,
        })
        .unwrap_or(0);
    let tid_serve0 = tid_worker0 + if workers > 1 { workers as u64 } else { 0 };
    // Per-node lanes for distributed runs: one track per worker node id
    // seen in membership events, past the serving lanes.
    let nodes = events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::NodeJoin { node, .. }
            | JournalEvent::NodeLost { node, .. }
            | JournalEvent::Reshard { node, .. } => Some(*node + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let tid_node0 = tid_serve0 + serve_workers as u64;

    let mut out: Vec<Value> = Vec::new();
    out.push(meta_event(0, "process_name", "fae-simulated-timeline"));
    out.push(meta_event(TID_CPU_RESIDENT, "thread_name", "cpu-resident"));
    for g in 0..num_gpus {
        out.push(meta_event(TID_DEVICE0 + g as u64, "thread_name", &format!("gpu{g}")));
    }
    out.push(meta_event(tid_comm, "thread_name", "communication"));
    out.push(meta_event(tid_framework, "thread_name", "framework"));
    if workers > 1 {
        for w in 0..workers {
            out.push(meta_event(tid_worker0 + w as u64, "thread_name", &format!("worker{w}")));
        }
    }
    for w in 0..serve_workers {
        out.push(meta_event(tid_serve0 + w as u64, "thread_name", &format!("serve-worker{w}")));
    }
    for k in 0..nodes {
        out.push(meta_event(tid_node0 + k, "thread_name", &format!("node{k}")));
    }

    // A single simulated-time cursor: each charging event occupies the
    // window [cursor, cursor + total), with its phases laid end to end in
    // Phase::ALL order so slices never overlap within a track.
    let mut cursor_us = 0.0f64;
    for event in events {
        let (phases, mode, cat, extra): (_, Option<StepMode>, &str, Vec<(&str, Value)>) =
            match event {
                JournalEvent::Step { step, mode, rate, phases, .. } => (
                    phases,
                    Some(*mode),
                    match mode {
                        StepMode::Hot => "step-hot",
                        StepMode::Cold => "step-cold",
                    },
                    vec![
                        ("step", serde_json::to_value(step)),
                        ("rate", serde_json::to_value(rate)),
                    ],
                ),
                JournalEvent::Sync { step, direction, bytes, phases } => (
                    phases,
                    None,
                    "sync",
                    vec![
                        ("step", serde_json::to_value(step)),
                        ("direction", Value::String(direction.clone())),
                        ("bytes", serde_json::to_value(bytes)),
                    ],
                ),
                JournalEvent::Charge { step, label, phases } => (
                    phases,
                    None,
                    "charge",
                    vec![
                        ("step", serde_json::to_value(step)),
                        ("label", Value::String(label.clone())),
                    ],
                ),
                JournalEvent::Fault { step, kind } => {
                    // Zero-duration instant marker on the framework track.
                    let mut args = Map::new();
                    args.insert("step".into(), serde_json::to_value(step));
                    args.insert("kind".into(), Value::String(kind.clone()));
                    let mut m = Map::new();
                    m.insert("ph".into(), Value::String("i".into()));
                    m.insert("pid".into(), serde_json::to_value(&TRACE_PID));
                    m.insert("tid".into(), serde_json::to_value(&tid_framework));
                    m.insert("name".into(), Value::String(format!("fault:{kind}")));
                    m.insert("cat".into(), Value::String("fault".into()));
                    m.insert("ts".into(), serde_json::to_value(&cursor_us));
                    m.insert("s".into(), Value::String("p".into()));
                    m.insert("args".into(), Value::Object(args));
                    out.push(Value::Object(m));
                    continue;
                }
                JournalEvent::Mark { step, label, detail } => {
                    // Node-local markers carry no charge: instant on the
                    // framework track (the merged exporter re-renders
                    // them on their own node's track group instead).
                    let mut args = Map::new();
                    args.insert("step".into(), serde_json::to_value(step));
                    args.insert("detail".into(), Value::String(detail.clone()));
                    out.push(instant_event(
                        tid_framework,
                        &format!("mark:{label}"),
                        "mark",
                        cursor_us,
                        args,
                    ));
                    continue;
                }
                JournalEvent::Alert { step, rule, message, value, threshold } => {
                    let mut args = Map::new();
                    args.insert("step".into(), serde_json::to_value(step));
                    args.insert("message".into(), Value::String(message.clone()));
                    args.insert("value".into(), serde_json::to_value(value));
                    args.insert("threshold".into(), serde_json::to_value(threshold));
                    out.push(instant_event(
                        tid_framework,
                        &format!("alert:{rule}"),
                        "alert",
                        cursor_us,
                        args,
                    ));
                    continue;
                }
                JournalEvent::NodeJoin { step, node, epoch, state_bytes } => {
                    let mut args = Map::new();
                    args.insert("step".into(), serde_json::to_value(step));
                    args.insert("epoch".into(), serde_json::to_value(epoch));
                    args.insert("state_bytes".into(), serde_json::to_value(state_bytes));
                    out.push(instant_event(
                        tid_node0 + node,
                        &format!("node-join:{node}"),
                        "membership",
                        cursor_us,
                        args,
                    ));
                    continue;
                }
                JournalEvent::NodeLost { step, node, suspicion } => {
                    let mut args = Map::new();
                    args.insert("step".into(), serde_json::to_value(step));
                    args.insert("suspicion".into(), serde_json::to_value(suspicion));
                    out.push(instant_event(
                        tid_node0 + node,
                        &format!("node-lost:{node}"),
                        "membership",
                        cursor_us,
                        args,
                    ));
                    continue;
                }
                JournalEvent::Reshard { step, node, live, phases } => {
                    // The reshard charge runs on the lost node's lane so
                    // the gap it tore into training is visible per node.
                    let mut local_us = cursor_us;
                    for (i, phase) in Phase::ALL.iter().enumerate() {
                        let secs = phases.0[i];
                        if secs <= 0.0 {
                            continue;
                        }
                        let dur_us = secs * 1e6;
                        let mut args = Map::new();
                        args.insert("step".into(), serde_json::to_value(step));
                        args.insert("live".into(), serde_json::to_value(live));
                        out.push(slice_event(
                            tid_node0 + node,
                            &phase.to_string(),
                            "reshard",
                            local_us,
                            dur_us,
                            args,
                        ));
                        local_us += dur_us;
                    }
                    cursor_us = local_us;
                    continue;
                }
                JournalEvent::ServeBatch { batch, worker, size, start_s, hits, misses, phases } => {
                    // Serve batches carry their own simulated dispatch
                    // instant and run concurrently across worker lanes, so
                    // they are laid out from start_s on their worker's lane
                    // and never advance the shared cursor.
                    let mut local_us = start_s * 1e6;
                    for (i, phase) in Phase::ALL.iter().enumerate() {
                        let secs = phases.0[i];
                        if secs <= 0.0 {
                            continue;
                        }
                        let dur_us = secs * 1e6;
                        let mut args = Map::new();
                        args.insert("batch".into(), serde_json::to_value(batch));
                        args.insert("size".into(), serde_json::to_value(size));
                        args.insert("hits".into(), serde_json::to_value(hits));
                        args.insert("misses".into(), serde_json::to_value(misses));
                        out.push(slice_event(
                            tid_serve0 + *worker as u64,
                            &phase.to_string(),
                            "serve-batch",
                            local_us,
                            dur_us,
                            args,
                        ));
                        local_us += dur_us;
                    }
                    continue;
                }
                _ => continue,
            };

        let mut local_us = cursor_us;
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let secs = phases.0[i];
            if secs <= 0.0 {
                continue;
            }
            let dur_us = secs * 1e6;
            let name = phase.to_string();
            let mut args = Map::new();
            for (k, v) in &extra {
                args.insert((*k).into(), v.clone());
            }
            match track_for(*phase, mode) {
                Track::CpuResident => {
                    out.push(slice_event(TID_CPU_RESIDENT, &name, cat, local_us, dur_us, args));
                }
                Track::Comm => {
                    out.push(slice_event(tid_comm, &name, cat, local_us, dur_us, args));
                }
                Track::Framework => {
                    out.push(slice_event(tid_framework, &name, cat, local_us, dur_us, args));
                }
                Track::Devices => {
                    // Data-parallel replicas perform the same work; show
                    // the slice on every device track.
                    for g in 0..num_gpus {
                        out.push(slice_event(
                            TID_DEVICE0 + g as u64,
                            &name,
                            cat,
                            local_us,
                            dur_us,
                            args.clone(),
                        ));
                    }
                    // The execution engine's worker threads each process a
                    // contiguous shard of the same step concurrently, so the
                    // step's compute slices repeat on every worker lane.
                    if workers > 1 && mode.is_some() {
                        for w in 0..workers {
                            out.push(slice_event(
                                tid_worker0 + w as u64,
                                &name,
                                cat,
                                local_us,
                                dur_us,
                                args.clone(),
                            ));
                        }
                    }
                }
            }
            local_us += dur_us;
        }
        cursor_us = local_us;
    }
    out
}

/// Renders a merged cross-node stream (from
/// [`merge_tagged`](crate::merge::merge_tagged)) as a Chrome trace-event
/// document with **one track group per node**: the coordinator's full
/// simulated timeline keeps pid [`TRACE_PID`], and every worker node
/// `k` gets its own process (pid `k + 2`) carrying its shipped marks
/// plus a `heartbeat-gap` instant at the moment the coordinator
/// declared it dead. Deterministic for a fixed input, byte for byte.
pub fn merged_chrome_trace(merged: &[TaggedEvent]) -> Result<String, serde_json::Error> {
    let times = crate::merge::event_times(merged);
    let coordinator: Vec<JournalEvent> =
        merged.iter().filter(|t| t.node_id == 0).map(|t| t.event.clone()).collect();
    let mut out = trace_events(&coordinator);

    // One process per worker node, in node order. Pid is the journal
    // node id + 1 so the coordinator keeps TRACE_PID (= 0 + 1).
    let mut worker_nodes: Vec<u64> = merged.iter().map(|t| t.node_id).filter(|n| *n > 0).collect();
    worker_nodes.sort_unstable();
    worker_nodes.dedup();
    for node in &worker_nodes {
        let wire = node - 1;
        out.push(meta_event_pid(node + 1, 0, "process_name", &format!("fae-node{wire}")));
        out.push(meta_event_pid(node + 1, 1, "thread_name", "events"));
    }

    for (t, ts) in merged.iter().zip(&times) {
        let ts_us = ts * 1e6;
        match (&t.event, t.node_id) {
            // Shipped worker marks land on their node's own track group.
            (JournalEvent::Mark { step, label, detail }, node) if node > 0 => {
                let mut args = Map::new();
                args.insert("step".into(), serde_json::to_value(step));
                args.insert("detail".into(), Value::String(detail.clone()));
                out.push(instant_event_pid(
                    node + 1,
                    1,
                    &format!("mark:{label}"),
                    "mark",
                    ts_us,
                    args,
                ));
            }
            // A declared-dead worker shows the gap on its own group.
            (JournalEvent::NodeLost { step, node, suspicion }, 0) => {
                let mut args = Map::new();
                args.insert("step".into(), serde_json::to_value(step));
                args.insert("suspicion".into(), serde_json::to_value(suspicion));
                out.push(instant_event_pid(node + 2, 1, "heartbeat-gap", "alert", ts_us, args));
            }
            _ => {}
        }
    }

    let mut root = Map::new();
    root.insert("traceEvents".into(), Value::Array(out));
    root.insert("displayTimeUnit".into(), Value::String("ms".into()));
    serde_json::to_string(&Value::Object(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::PhaseSeconds;

    fn sample() -> Vec<JournalEvent> {
        vec![
            JournalEvent::RunStart {
                workload: "w".into(),
                seed: 1,
                num_gpus: 2,
                workers: 2,
                epochs: 1,
                minibatch_size: 8,
                initial_rate: 100,
                lookahead: 0,
                stale_skip: 0.0,
            },
            JournalEvent::Sync {
                step: 0,
                direction: "initial".into(),
                bytes: 4096,
                phases: PhaseSeconds([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5, 0.0]),
            },
            JournalEvent::Step {
                step: 1,
                mode: StepMode::Hot,
                rate: 100,
                loss: 0.7,
                phases: PhaseSeconds([0.1, 0.2, 0.3, 0.05, 0.0, 0.15, 0.0, 0.01]),
            },
            JournalEvent::Step {
                step: 2,
                mode: StepMode::Cold,
                rate: 100,
                loss: 0.6,
                phases: PhaseSeconds([0.4, 0.2, 0.3, 0.05, 0.2, 0.15, 0.0, 0.01]),
            },
            JournalEvent::Fault { step: 2, kind: "device-loss".into() },
            JournalEvent::RunEnd {
                steps: 2,
                hot_steps: 1,
                cold_steps: 1,
                transitions: 1,
                simulated_seconds: 2.62,
                final_accuracy: 0.5,
                final_rate: Some(100),
                interrupted: false,
            },
        ]
    }

    #[test]
    fn trace_is_valid_json_with_expected_tracks() {
        let text = chrome_trace(&sample()).expect("render");
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert!(names.contains(&"cpu-resident"));
        assert!(names.contains(&"gpu0"));
        assert!(names.contains(&"gpu1"));
        assert!(names.contains(&"communication"));
        assert!(names.contains(&"framework"));
    }

    #[test]
    fn hot_embed_forward_runs_on_devices_cold_on_cpu() {
        let text = chrome_trace(&sample()).expect("render");
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let embed: Vec<(&str, u64)> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some("embed-forward")
                    && e.get("ph").and_then(Value::as_str) == Some("X")
            })
            .map(|e| {
                (
                    e.get("cat").and_then(Value::as_str).unwrap(),
                    e.get("tid").and_then(Value::as_u64).unwrap(),
                )
            })
            .collect();
        assert!(embed.iter().any(|&(cat, tid)| cat == "step-hot" && tid >= TID_DEVICE0));
        assert!(embed.iter().any(|&(cat, tid)| cat == "step-cold" && tid == TID_CPU_RESIDENT));
        assert!(!embed.iter().any(|&(cat, tid)| cat == "step-hot" && tid == TID_CPU_RESIDENT));
    }

    #[test]
    fn slice_durations_cover_all_simulated_seconds() {
        let events = sample();
        let expected_us: f64 =
            events.iter().filter_map(JournalEvent::phases).map(|p| p.total() * 1e6).sum();
        let text = chrome_trace(&events).expect("render");
        let v: Value = serde_json::from_str(&text).unwrap();
        // Sum durations once per slice position — device-track replicas of
        // the same (ts, name) count once.
        let mut seen = std::collections::BTreeSet::new();
        let mut total_us = 0.0;
        for e in v.get("traceEvents").and_then(Value::as_array).unwrap() {
            if e.get("ph").and_then(Value::as_str) != Some("X") {
                continue;
            }
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            let name = e.get("name").and_then(Value::as_str).unwrap();
            if seen.insert((format!("{ts:.6}"), name.to_string())) {
                total_us += e.get("dur").and_then(Value::as_f64).unwrap();
            }
        }
        assert!((total_us - expected_us).abs() < 1e-3, "{total_us} vs {expected_us}");
    }

    #[test]
    fn worker_lanes_present_when_parallel() {
        let text = chrome_trace(&sample()).expect("render");
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert!(names.contains(&"worker0"));
        assert!(names.contains(&"worker1"));
        // Step compute slices repeat on the worker lanes.
        let worker_tid_min = TID_DEVICE0 + 2 + 2; // gpus + comm + framework
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("tid").and_then(Value::as_u64).unwrap_or(0) >= worker_tid_min
        }));
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace(&sample()).expect("render");
        let b = chrome_trace(&sample()).expect("render");
        assert_eq!(a, b);
    }

    #[test]
    fn serve_batches_land_on_serve_worker_lanes_at_their_own_start() {
        let events = vec![
            JournalEvent::ServeStart {
                workload: "w".into(),
                seed: 1,
                workers: 2,
                max_batch: 16,
                max_delay_us: 2000,
                queue_cap: 64,
            },
            JournalEvent::ServeBatch {
                batch: 1,
                worker: 1,
                size: 16,
                start_s: 0.25,
                hits: 60,
                misses: 4,
                phases: PhaseSeconds([0.001, 0.002, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0005]),
            },
            JournalEvent::ServeEnd {
                completed: 16,
                rejected: 0,
                p50_ms: 1.0,
                p95_ms: 2.0,
                p99_ms: 3.0,
                throughput_rps: 100.0,
                hit_rate: 0.9375,
                simulated_seconds: 0.26,
            },
        ];
        let text = chrome_trace(&events).expect("render");
        let v: Value = serde_json::from_str(&text).unwrap();
        let trace = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let lane_names: Vec<&str> = trace
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert!(lane_names.contains(&"serve-worker0"));
        assert!(lane_names.contains(&"serve-worker1"));
        // No train run header → train worker lanes absent, serve lanes
        // start right after the framework track (tids 1..=4 are taken).
        let tid_serve1 = TID_DEVICE0 + 1 + 2 + 1; // 1 gpu + comm + framework + worker 1
        let slices: Vec<&Value> =
            trace.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).collect();
        assert!(!slices.is_empty());
        for s in &slices {
            assert_eq!(s.get("tid").and_then(Value::as_u64), Some(tid_serve1));
            assert_eq!(s.get("cat").and_then(Value::as_str), Some("serve-batch"));
        }
        // First slice starts at the batch's own dispatch instant.
        let first_ts = slices[0].get("ts").and_then(Value::as_f64).unwrap();
        assert!((first_ts - 0.25e6).abs() < 1e-6);
    }

    #[test]
    fn train_journal_trace_is_unchanged_by_serve_support() {
        // A journal with no serve events must not grow serve lanes.
        let text = chrome_trace(&sample()).expect("render");
        assert!(!text.contains("serve-worker"));
    }

    fn merged_sample() -> Vec<TaggedEvent> {
        let mut tagged: Vec<TaggedEvent> = sample()
            .into_iter()
            .enumerate()
            .map(|(i, event)| TaggedEvent { node_id: 0, seq: i as u64, event })
            .collect();
        // Shipped worker mark, anchored at step 1; coordinator declares
        // node (wire id) 1 lost at step 2.
        tagged.push(TaggedEvent {
            node_id: 2,
            seq: 0,
            event: JournalEvent::Mark { step: 1, label: "task".into(), detail: "t=8".into() },
        });
        tagged.push(TaggedEvent {
            node_id: 0,
            seq: 6,
            event: JournalEvent::NodeLost { step: 2, node: 1, suspicion: 3 },
        });
        crate::merge::merge_tagged(&[tagged]).0
    }

    #[test]
    fn merged_trace_has_one_process_group_per_node() {
        let text = merged_chrome_trace(&merged_sample()).expect("render");
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let processes: Vec<(u64, &str)> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("M")
                    && e.get("name").and_then(Value::as_str) == Some("process_name")
            })
            .map(|e| {
                (
                    e.get("pid").and_then(Value::as_u64).unwrap(),
                    e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str).unwrap(),
                )
            })
            .collect();
        assert!(processes.contains(&(TRACE_PID, "fae-simulated-timeline")));
        assert!(processes.contains(&(3, "fae-node1")), "{processes:?}");
    }

    #[test]
    fn merged_trace_places_worker_marks_and_heartbeat_gaps_on_node_pids() {
        let text = merged_chrome_trace(&merged_sample()).expect("render");
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        let mark = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("mark:task"))
            .expect("shipped mark present");
        assert_eq!(mark.get("pid").and_then(Value::as_u64), Some(3));
        // Anchored at the clock of coordinator step 1 = 0.5 (initial
        // sync) + step 1's total charge laid before it... the anchor is
        // the clock BEFORE step 1's own charge, i.e. 0.5 s.
        let ts = mark.get("ts").and_then(Value::as_f64).unwrap();
        assert!((ts - 0.5e6).abs() < 1e-3, "mark ts {ts}");
        let gap = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("heartbeat-gap"))
            .expect("heartbeat-gap instant present");
        assert_eq!(gap.get("pid").and_then(Value::as_u64), Some(3));
        assert_eq!(gap.get("cat").and_then(Value::as_str), Some("alert"));
    }

    #[test]
    fn merged_trace_coordinator_slices_match_single_node_export() {
        // The coordinator's own track group must be exactly the
        // single-journal export — merging adds groups, never perturbs.
        let single = chrome_trace(&sample()).expect("render");
        let merged = merged_chrome_trace(&merged_sample()).expect("render");
        let slices = |text: &str| -> Vec<Value> {
            let v: Value = serde_json::from_str(text).unwrap();
            v.get("traceEvents")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
                .cloned()
                .collect()
        };
        assert_eq!(slices(&single), slices(&merged));
    }

    #[test]
    fn merged_export_is_deterministic() {
        let a = merged_chrome_trace(&merged_sample()).expect("render");
        let b = merged_chrome_trace(&merged_sample()).expect("render");
        assert_eq!(a, b);
    }
}
