//! Loom model tests for `ShardedEmbeddingTable`'s per-shard locking.
//!
//! The interesting rows are the **shard boundaries**: `shard_of` uses
//! ceil/floor split arithmetic (the first `rows % n` shards are one row
//! wider), so an off-by-one would send a boundary row's update through
//! the wrong shard's lock — racing unlocked against the right shard's
//! readers. The models below hammer exactly those rows from concurrent
//! writers and readers and check the arithmetic outcome, which is only
//! deterministic if every access went through the owning shard's lock.
//!
//! Under the vendored loom shim each model re-runs on real threads
//! (stress mode); under real loom the same source is model-checked
//! exhaustively.

use loom::sync::Arc;

use fae_embed::{EmbeddingTable, ShardedEmbeddingTable, SparseGrad};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 10 rows over 4 shards → widths 3,3,2,2 → boundary rows at the start
/// and end of every shard: 0,2,3,5,6,7,8,9.
const ROWS: usize = 10;
const SHARDS: usize = 4;
const DIM: usize = 4;

/// Rows straddling every shard cut for the 10/4 split, including both
/// sides of each boundary.
const BOUNDARY_ROWS: [u32; 8] = [0, 2, 3, 5, 6, 7, 8, 9];

/// Builds the racing table with every weight an exact multiple of 2⁻⁴.
///
/// The assertions below reconstruct expected values arithmetically
/// (`b - 0.75`, `v + 1.0`), and the two writers' updates can land in
/// either order — so `(b - 0.5) - 0.25` and `(b - 0.25) - 0.5` must
/// both equal `b - 0.75` *exactly*, or a benign rounding difference
/// would masquerade as a lost update on rare interleavings. Multiples
/// of 2⁻⁴ below 2⁵ keep every intermediate exactly representable.
fn fresh_table() -> ShardedEmbeddingTable {
    let mut rng = StdRng::seed_from_u64(7);
    let serial = EmbeddingTable::new(ROWS, DIM, &mut rng);
    let sharded = ShardedEmbeddingTable::from_table(&serial, SHARDS);
    for r in 0..ROWS as u32 {
        let row: Vec<f32> = (0..DIM).map(|d| r as f32 * 0.125 + d as f32 * 0.0625).collect();
        sharded.set_row(r, &row);
    }
    sharded
}

/// Gradient touching every boundary row with a power-of-two value, so
/// float accumulation is exact and any lost update is exactly visible.
fn boundary_grad(value: f32) -> SparseGrad {
    let mut g = SparseGrad::new(DIM);
    for &r in &BOUNDARY_ROWS {
        g.accumulate(r, &[value; DIM]);
    }
    g
}

#[test]
fn concurrent_sparse_sgd_on_boundary_rows_loses_no_update() {
    loom::model(|| {
        let table = Arc::new(fresh_table());
        let before: Vec<Vec<f32>> = BOUNDARY_ROWS.iter().map(|&r| table.row(r)).collect();

        // Two writers race disjoint-in-time but same-row updates; the
        // shard locks must serialise them. Power-of-two grads (0.5, 0.25)
        // with lr 1.0 make the sum exact in f32 regardless of order.
        let t1 = {
            let t = table.clone();
            loom::thread::spawn(move || t.sgd_step_sparse(&boundary_grad(0.5), 1.0))
        };
        let t2 = {
            let t = table.clone();
            loom::thread::spawn(move || t.sgd_step_sparse_parallel(&boundary_grad(0.25), 1.0))
        };
        t1.join().expect("writer 1");
        t2.join().expect("writer 2");

        for (i, &r) in BOUNDARY_ROWS.iter().enumerate() {
            let after = table.row(r);
            for (d, (&b, &a)) in before[i].iter().zip(&after).enumerate() {
                assert_eq!(a, b - 0.75, "row {r} dim {d}: lost or doubled update");
            }
        }
    });
}

#[test]
fn concurrent_readers_never_tear_a_boundary_lookup() {
    loom::model(|| {
        let table = Arc::new(fresh_table());

        // A writer walks boundary rows while readers do bag lookups over
        // the same rows. Every observed row must be either the original
        // value or the fully-updated one — never a torn mix within one
        // row (the row is copied under the shard's read lock).
        let writer = {
            let t = table.clone();
            loom::thread::spawn(move || t.sgd_step_sparse(&boundary_grad(1.0), 1.0))
        };
        let reader = {
            let t = table.clone();
            loom::thread::spawn(move || {
                let offsets: Vec<usize> = (0..=BOUNDARY_ROWS.len()).collect();
                t.lookup_bag(&BOUNDARY_ROWS, &offsets)
            })
        };
        writer.join().expect("writer");
        let bags = reader.join().expect("reader");

        let final_rows: Vec<Vec<f32>> = BOUNDARY_ROWS.iter().map(|&r| table.row(r)).collect();
        for (i, &r) in BOUNDARY_ROWS.iter().enumerate() {
            let seen = &bags.as_slice()[i * DIM..(i + 1) * DIM];
            let updated = &final_rows[i];
            let original: Vec<f32> = updated.iter().map(|v| v + 1.0).collect();
            let matches_updated = seen.iter().zip(updated).all(|(s, u)| s == u);
            let matches_original = seen.iter().zip(&original).all(|(s, o)| s == o);
            assert!(
                matches_updated || matches_original,
                "row {r} read a torn value: {seen:?} is neither {original:?} nor {updated:?}"
            );
        }
    });
}

#[test]
fn shard_of_assigns_every_boundary_row_exactly_one_owner() {
    // Not a concurrency model, but the arithmetic the models rely on:
    // writing through row r's owning shard and reading it back must
    // round-trip for every row, for shard counts around the row count.
    for shards in 1..=ROWS + 2 {
        let mut rng = StdRng::seed_from_u64(11);
        let serial = EmbeddingTable::new(ROWS, DIM, &mut rng);
        let sharded = ShardedEmbeddingTable::from_table(&serial, shards);
        for r in 0..ROWS as u32 {
            let marked = vec![r as f32 + 0.5; DIM];
            sharded.set_row(r, &marked);
            assert_eq!(sharded.row(r), marked, "row {r} with {shards} shards");
        }
    }
}
