//! Int8 quantized cold-tier embedding storage.
//!
//! The paper's premise is that the cold majority of every table is touched
//! rarely; the frequency-aware-cache literature (arXiv 2208.05321) shows
//! that majority can also live *compressed*. [`TieredTable`] keeps the
//! calibrator-pinned hot rows as exact `f32` in a flat arena and stores
//! every cold row as int8 with an affine per-row code
//! (`v ≈ min + scale · q`, `q ∈ 0..=255`), shrinking cold weights 4×.
//! Cold rows dequantize on touch and requantize on apply; hot rows train
//! bit-identically to an untiered table (DESIGN.md §14).

use fae_nn::Tensor;
use rand::Rng;

use crate::partition::HotColdPartition;
use crate::sparse::SparseGrad;
use crate::table::EmbeddingTable;

/// Tag bit marking a row's slot as living in the hot `f32` arena.
const HOT_TAG: u32 = 1 << 31;

/// Quantizes one row into `out`, returning `(scale, min)`.
///
/// The code is affine per row: `scale = (max − min) / 255`, and each value
/// maps to `q = round((v − min) / scale)`. A constant row gets
/// `scale = 0` and dequantizes exactly to `min`. The round-trip error is
/// at most `scale / 2` per element.
pub fn quantize_row(values: &[f32], out: &mut [u8]) -> (f32, f32) {
    assert_eq!(values.len(), out.len(), "quantize_row length mismatch");
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let scale = (hi - lo) / 255.0;
    if scale == 0.0 {
        out.fill(0);
        return (0.0, lo);
    }
    for (q, &v) in out.iter_mut().zip(values) {
        *q = (((v - lo) / scale).round()).clamp(0.0, 255.0) as u8;
    }
    (scale, lo)
}

/// Dequantizes one code back to `f32`.
#[inline]
pub fn dequantize(q: u8, scale: f32, min: f32) -> f32 {
    min + scale * q as f32
}

/// A `rows × dim` embedding table with two numeric tiers: hot rows exact
/// `f32` in one contiguous arena, cold rows int8 (per-row affine code) in
/// another. Row placement is fixed at construction from a
/// [`HotColdPartition`] — exactly the popularity classification the
/// calibrator already computes.
#[derive(Clone)]
pub struct TieredTable {
    rows: usize,
    dim: usize,
    /// Per global row: tier slot, with [`HOT_TAG`] set for hot rows.
    slot: Vec<u32>,
    /// Hot arena, `hot_count × dim`, row-major.
    hot: Vec<f32>,
    /// Cold codes, `cold_count × dim`, row-major.
    cold_q: Vec<u8>,
    /// Per cold row affine scale.
    cold_scale: Vec<f32>,
    /// Per cold row affine offset (the row minimum).
    cold_min: Vec<f32>,
}

impl TieredTable {
    /// Creates a tiered table with DLRM's uniform `±1/sqrt(rows)`
    /// initialisation, drawing the RNG in exactly the row-major order
    /// [`EmbeddingTable::new`] uses. Hot rows are therefore bit-identical
    /// to the untiered initialisation; cold rows are quantized immediately
    /// from a one-row scratch buffer, so the full `f32` table is never
    /// materialized.
    pub fn new(rows: usize, dim: usize, partition: &HotColdPartition, rng: &mut impl Rng) -> Self {
        assert!(rows > 0 && dim > 0, "embedding table must be non-empty");
        assert_eq!(partition.rows(), rows, "partition row count mismatch");
        let scale = 1.0 / (rows as f32).sqrt();
        let hot_count = partition.hot_count();
        let cold_count = rows - hot_count;
        let mut out = Self {
            rows,
            dim,
            slot: Vec::with_capacity(rows),
            hot: Vec::with_capacity(hot_count * dim),
            cold_q: Vec::with_capacity(cold_count * dim),
            cold_scale: Vec::with_capacity(cold_count),
            cold_min: Vec::with_capacity(cold_count),
        };
        let mut row_buf = vec![0.0f32; dim];
        let mut code_buf = vec![0u8; dim];
        for r in 0..rows as u32 {
            for v in row_buf.iter_mut() {
                *v = rng.gen_range(-scale..scale);
            }
            out.push_row(r, &row_buf, &mut code_buf, partition);
        }
        out
    }

    /// Quantizes an existing `f32` table (checkpoint restore, tests).
    pub fn from_table(table: &EmbeddingTable, partition: &HotColdPartition) -> Self {
        assert_eq!(partition.rows(), table.rows(), "partition row count mismatch");
        let (rows, dim) = (table.rows(), table.dim());
        let hot_count = partition.hot_count();
        let cold_count = rows - hot_count;
        let mut out = Self {
            rows,
            dim,
            slot: Vec::with_capacity(rows),
            hot: Vec::with_capacity(hot_count * dim),
            cold_q: Vec::with_capacity(cold_count * dim),
            cold_scale: Vec::with_capacity(cold_count),
            cold_min: Vec::with_capacity(cold_count),
        };
        let mut code_buf = vec![0u8; dim];
        for r in 0..rows as u32 {
            out.push_row(r, table.row(r), &mut code_buf, partition);
        }
        out
    }

    fn push_row(&mut self, r: u32, values: &[f32], code_buf: &mut [u8], p: &HotColdPartition) {
        if p.is_hot(r) {
            self.slot.push(HOT_TAG | (self.hot.len() / self.dim) as u32);
            self.hot.extend_from_slice(values);
        } else {
            let (s, m) = quantize_row(values, code_buf);
            self.slot.push(self.cold_scale.len() as u32);
            self.cold_q.extend_from_slice(code_buf);
            self.cold_scale.push(s);
            self.cold_min.push(m);
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of hot (`f32`) rows.
    pub fn hot_rows(&self) -> usize {
        self.hot.len() / self.dim
    }

    /// Number of cold (int8) rows.
    pub fn cold_rows(&self) -> usize {
        self.cold_scale.len()
    }

    /// True if global row `idx` lives in the hot tier.
    pub fn is_hot(&self, idx: u32) -> bool {
        self.slot[idx as usize] & HOT_TAG != 0
    }

    /// Honest resident size: hot f32s + cold codes + per-cold-row affine
    /// metadata + the per-row slot map.
    pub fn size_bytes(&self) -> usize {
        self.hot.len() * 4 + self.cold_q.len() + self.cold_scale.len() * 8 + self.slot.len() * 4
    }

    /// Copies row `idx` into `out`, dequantizing if cold.
    pub fn copy_row_into(&self, idx: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "row width mismatch");
        let slot = self.slot[idx as usize];
        if slot & HOT_TAG != 0 {
            let off = (slot & !HOT_TAG) as usize * self.dim;
            out.copy_from_slice(&self.hot[off..off + self.dim]);
        } else {
            let c = slot as usize;
            let (s, m) = (self.cold_scale[c], self.cold_min[c]);
            let codes = &self.cold_q[c * self.dim..(c + 1) * self.dim];
            for (o, &q) in out.iter_mut().zip(codes) {
                *o = dequantize(q, s, m);
            }
        }
    }

    /// Row `idx` as an owned vector, dequantizing if cold.
    pub fn row_f32(&self, idx: u32) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        self.copy_row_into(idx, &mut out);
        out
    }

    /// Overwrites row `idx`: hot rows store exact `f32`, cold rows
    /// requantize (fresh per-row scale and min).
    pub fn set_row(&mut self, idx: u32, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "row width mismatch");
        let slot = self.slot[idx as usize];
        if slot & HOT_TAG != 0 {
            let off = (slot & !HOT_TAG) as usize * self.dim;
            self.hot[off..off + self.dim].copy_from_slice(values);
        } else {
            let c = slot as usize;
            let (s, m) = quantize_row(values, &mut self.cold_q[c * self.dim..(c + 1) * self.dim]);
            self.cold_scale[c] = s;
            self.cold_min[c] = m;
        }
    }

    /// Sum-pooled bag lookup, mirroring [`EmbeddingTable::lookup_bag`]:
    /// hot rows accumulate from the arena, cold rows dequantize on the
    /// fly (no per-row allocation).
    pub fn lookup_bag(&self, indices: &[u32], offsets: &[usize]) -> Tensor {
        assert!(!offsets.is_empty(), "offsets must contain batch+1 entries");
        assert_eq!(
            offsets.last().copied(),
            Some(indices.len()),
            "offsets must end at indices.len()"
        );
        let batch = offsets.len() - 1;
        let mut out = Tensor::zeros(batch, self.dim);
        for b in 0..batch {
            let dst = out.row_mut(b);
            for &idx in &indices[offsets[b]..offsets[b + 1]] {
                let slot = self.slot[idx as usize];
                if slot & HOT_TAG != 0 {
                    let off = (slot & !HOT_TAG) as usize * self.dim;
                    fae_nn::lanes::add_assign(dst, &self.hot[off..off + self.dim]);
                } else {
                    let c = slot as usize;
                    let (s, m) = (self.cold_scale[c], self.cold_min[c]);
                    let codes = &self.cold_q[c * self.dim..(c + 1) * self.dim];
                    for (d, &q) in dst.iter_mut().zip(codes) {
                        *d += dequantize(q, s, m);
                    }
                }
            }
        }
        out
    }

    /// Sparse SGD update. Hot rows update in place exactly as
    /// [`EmbeddingTable::sgd_step_sparse`] (bit-identical). Cold rows
    /// dequantize-on-touch into a scratch row, update in `f32`, and
    /// requantize-on-apply — each touched row is read and written once.
    pub fn sgd_step_sparse(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "gradient width mismatch");
        let mut scratch = vec![0.0f32; self.dim];
        for (idx, g) in grad.iter() {
            let slot = self.slot[idx as usize];
            if slot & HOT_TAG != 0 {
                let off = (slot & !HOT_TAG) as usize * self.dim;
                fae_nn::lanes::axpy(&mut self.hot[off..off + self.dim], -lr, g);
            } else {
                self.copy_row_into(idx, &mut scratch);
                fae_nn::lanes::axpy(&mut scratch, -lr, g);
                self.set_row(idx, &scratch);
            }
        }
    }

    /// Materializes a dequantized `f32` snapshot (checkpointing, eval
    /// parity tests). This is the one place the full `f32` footprint is
    /// paid, and only transiently.
    pub fn to_table(&self) -> EmbeddingTable {
        let mut weights = Tensor::zeros(self.rows, self.dim);
        for r in 0..self.rows as u32 {
            self.copy_row_into(r, weights.row_mut(r as usize));
        }
        EmbeddingTable::from_weights(weights)
    }

    /// Maximum absolute dequantization error against an `f32` reference
    /// table of identical shape.
    pub fn max_abs_error(&self, reference: &EmbeddingTable) -> f32 {
        assert_eq!(reference.rows(), self.rows, "shape mismatch");
        assert_eq!(reference.dim(), self.dim, "shape mismatch");
        let mut worst = 0.0f32;
        let mut buf = vec![0.0f32; self.dim];
        for r in 0..self.rows as u32 {
            self.copy_row_into(r, &mut buf);
            for (a, &b) in buf.iter().zip(reference.row(r)) {
                worst = worst.max((a - b).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn partition_with_hot(rows: usize, hot: &[u32]) -> HotColdPartition {
        let mut counter = crate::stats::AccessCounter::new(rows);
        for &h in hot {
            counter.record(h);
            counter.record(h);
        }
        HotColdPartition::from_counts(&counter, 2)
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let row: Vec<f32> = (0..16).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let mut codes = vec![0u8; 16];
            let (scale, min) = quantize_row(&row, &mut codes);
            for (&q, &v) in codes.iter().zip(&row) {
                let err = (dequantize(q, scale, min) - v).abs();
                assert!(err <= scale / 2.0 + 1e-6, "err {err} vs step {scale}");
            }
        }
    }

    #[test]
    fn constant_row_is_exact() {
        let row = vec![0.25f32; 8];
        let mut codes = vec![0u8; 8];
        let (scale, min) = quantize_row(&row, &mut codes);
        assert_eq!(scale, 0.0);
        for &q in &codes {
            assert_eq!(dequantize(q, scale, min), 0.25);
        }
    }

    #[test]
    fn hot_rows_are_bit_identical_to_untiered_init() {
        // Same seed, same draw order: the tiered constructor must produce
        // hot rows with exactly the bits of EmbeddingTable::new.
        let p = partition_with_hot(50, &[0, 7, 23, 49]);
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let dense = EmbeddingTable::new(50, 8, &mut r1);
        let tiered = TieredTable::new(50, 8, &p, &mut r2);
        assert_eq!(tiered.hot_rows(), 4);
        for &h in &[0u32, 7, 23, 49] {
            assert_eq!(tiered.row_f32(h), dense.row(h), "hot row {h}");
        }
        // Cold rows carry at most the affine half-step of error.
        assert!(tiered.max_abs_error(&dense) < 2.0 / 50f32.sqrt() / 255.0);
    }

    #[test]
    fn tiered_is_roughly_4x_smaller_when_mostly_cold() {
        let p = partition_with_hot(4096, &[0, 1]);
        let mut rng = StdRng::seed_from_u64(3);
        let dense = EmbeddingTable::new(4096, 64, &mut rng);
        let tiered = TieredTable::from_table(&dense, &p);
        // Weights shrink 4×; per-row metadata (12 B) is small at dim 64.
        let ratio = dense.size_bytes() as f64 / tiered.size_bytes() as f64;
        assert!(ratio > 3.3, "ratio {ratio}");
    }

    #[test]
    fn lookup_matches_dense_within_quantization() {
        let p = partition_with_hot(100, &[5]);
        let mut rng = StdRng::seed_from_u64(4);
        let dense = EmbeddingTable::new(100, 16, &mut rng);
        let tiered = TieredTable::from_table(&dense, &p);
        let idx = [5u32, 5, 63, 99, 0];
        let off = [0usize, 2, 4, 5];
        let a = dense.lookup_bag(&idx, &off);
        let b = tiered.lookup_bag(&idx, &off);
        let step = 2.0 / 100f32.sqrt() / 255.0;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 2.0 * step + 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn hot_updates_are_bit_identical_to_dense() {
        let p = partition_with_hot(20, &[3, 11]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut dense = EmbeddingTable::new(20, 8, &mut rng);
        let mut tiered = TieredTable::from_table(&dense, &p);
        let mut g = SparseGrad::new(8);
        g.accumulate(3, &[0.1; 8]);
        g.accumulate(11, &[-0.2; 8]);
        for _ in 0..50 {
            dense.sgd_step_sparse(&g, 0.05);
            tiered.sgd_step_sparse(&g, 0.05);
        }
        assert_eq!(tiered.row_f32(3), dense.row(3));
        assert_eq!(tiered.row_f32(11), dense.row(11));
    }

    #[test]
    fn cold_update_lands_within_requantization_error() {
        let p = partition_with_hot(10, &[0]);
        let mut rng = StdRng::seed_from_u64(6);
        let dense = EmbeddingTable::new(10, 8, &mut rng);
        let mut tiered = TieredTable::from_table(&dense, &p);
        let before = tiered.row_f32(7);
        let mut g = SparseGrad::new(8);
        g.accumulate(7, &[1.0; 8]);
        tiered.sgd_step_sparse(&g, 0.1);
        let after = tiered.row_f32(7);
        // The f32 update is −0.1 per element; requantization may move it
        // by at most one affine step of the updated row.
        for (b, a) in before.iter().zip(&after) {
            assert!((b - 0.1 - a).abs() < 2e-3, "{b} -> {a}");
        }
    }

    proptest::proptest! {
        /// Property form of the round-trip bound: for any finite row,
        /// every element dequantizes to within half an affine step
        /// (`scale / 2`) of its source value, and a second
        /// quantize→dequantize pass stays on the same grid.
        #[test]
        fn quantize_round_trip_is_within_half_step(
            row in proptest::collection::vec(-8.0f32..8.0, 1..64)
        ) {
            let mut codes = vec![0u8; row.len()];
            let (scale, min) = quantize_row(&row, &mut codes);
            for (&q, &v) in codes.iter().zip(&row) {
                let err = (dequantize(q, scale, min) - v).abs();
                // f32 rounding inside the affine map costs a hair beyond
                // the ideal half step; bound it by a small multiple.
                proptest::prop_assert!(
                    err <= scale * 0.5 + scale * 1e-3 + 1e-6,
                    "err {} vs step {}", err, scale
                );
            }
            // Grid values survive a second pass nearly unchanged: one
            // more half-step at most (f32 rounding can shift the grid).
            let deq: Vec<f32> = codes.iter().map(|&q| dequantize(q, scale, min)).collect();
            let mut codes2 = vec![0u8; deq.len()];
            let (s2, m2) = quantize_row(&deq, &mut codes2);
            for (&q2, &v) in codes2.iter().zip(&deq) {
                let err = (dequantize(q2, s2, m2) - v).abs();
                proptest::prop_assert!(err <= s2 * 0.5 + s2 * 1e-3 + 1e-6);
            }
        }
    }

    #[test]
    fn promoted_cold_row_trains_bit_identically_from_its_dequantized_value() {
        // A recalibration can move a cold row into the hot tier. The
        // promoted row is seeded from its dequantized value, and from
        // then on must train with exactly f32 semantics — bit-identical
        // to a dense table holding the same dequantized start.
        let cold_p = partition_with_hot(12, &[0]);
        let mut rng = StdRng::seed_from_u64(8);
        let dense = EmbeddingTable::new(12, 8, &mut rng);
        let tiered = TieredTable::from_table(&dense, &cold_p);
        assert!(!tiered.is_hot(5), "row 5 must start cold");

        // Promote: re-tier the dequantized snapshot under a partition
        // where row 5 is hot.
        let hot_p = partition_with_hot(12, &[0, 5]);
        let snap = tiered.to_table();
        let mut promoted = TieredTable::from_table(&snap, &hot_p);
        assert!(promoted.is_hot(5));
        assert_eq!(promoted.row_f32(5), tiered.row_f32(5), "promotion seeds the exact bits");

        let mut reference = snap.clone();
        let mut g = SparseGrad::new(8);
        g.accumulate(5, &[0.31; 8]);
        for _ in 0..100 {
            promoted.sgd_step_sparse(&g, 0.07);
            reference.sgd_step_sparse(&g, 0.07);
        }
        assert_eq!(promoted.row_f32(5), reference.row(5), "hot training is exact f32");
    }

    #[test]
    fn to_table_round_trips_exactly() {
        let p = partition_with_hot(30, &[2, 9]);
        let mut rng = StdRng::seed_from_u64(7);
        let dense = EmbeddingTable::new(30, 4, &mut rng);
        let tiered = TieredTable::from_table(&dense, &p);
        let snap = tiered.to_table();
        // Snapshot equals the tiered view bit-for-bit (hot rows exact,
        // cold rows on the quantization grid).
        for r in 0..30u32 {
            assert_eq!(snap.row(r), tiered.row_f32(r).as_slice());
        }
    }
}
