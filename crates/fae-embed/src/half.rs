//! Mixed-precision (bf16) embedding storage — the related-work technique
//! the paper contrasts FAE with (§V: "prior work optimizes training ...
//! through mixed-precision training ... Even with these optimizations
//! real dataset's entire embedding table cannot fit on a GPU").
//!
//! Rows are stored as bfloat16 (the top 16 bits of an f32, rounded to
//! nearest-even), halving the footprint at ~3 decimal digits of mantissa.
//! Implemented from scratch — no `half` crate — because only the f32↔bf16
//! conversion is needed. The table exposes the same bag-lookup / sparse-
//! update surface as [`crate::EmbeddingTable`], so experiments can swap it
//! in and measure both the capacity gain and the accuracy cost, and the
//! orthogonality claim (FAE composes with compression) can be tested.

use fae_nn::Tensor;
use rand::Rng;

use crate::sparse::SparseGrad;

/// Converts an `f32` to bfloat16 bits with round-to-nearest-even.
#[inline]
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    // Round to nearest even: add 0x7FFF plus the LSB of the kept part.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(rounding_bias) >> 16) as u16
}

/// Expands bfloat16 bits back to `f32`.
#[inline]
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

/// A `rows × dim` embedding table stored in bfloat16 (half the bytes of
/// [`crate::EmbeddingTable`]).
#[derive(Clone)]
pub struct Bf16EmbeddingTable {
    data: Vec<u16>,
    rows: usize,
    dim: usize,
}

impl Bf16EmbeddingTable {
    /// Creates a table with DLRM's uniform `±1/sqrt(rows)` initialisation.
    pub fn new(rows: usize, dim: usize, rng: &mut impl Rng) -> Self {
        assert!(rows > 0 && dim > 0, "embedding table must be non-empty");
        let scale = 1.0 / (rows as f32).sqrt();
        let data = (0..rows * dim).map(|_| f32_to_bf16(rng.gen_range(-scale..scale))).collect();
        Self { data, rows, dim }
    }

    /// Quantises an existing f32 table.
    pub fn from_f32(table: &crate::table::EmbeddingTable) -> Self {
        Self {
            data: table.weights().as_slice().iter().map(|&v| f32_to_bf16(v)).collect(),
            rows: table.rows(),
            dim: table.dim(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Size in bytes — exactly half the f32 table's.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u16>()
    }

    /// One row, dequantised.
    pub fn row_f32(&self, idx: u32) -> Vec<f32> {
        let i = idx as usize;
        self.data[i * self.dim..(i + 1) * self.dim].iter().map(|&b| bf16_to_f32(b)).collect()
    }

    /// Sum-pooled bag lookup, dequantising on the fly (mirrors
    /// [`crate::EmbeddingTable::lookup_bag`]).
    pub fn lookup_bag(&self, indices: &[u32], offsets: &[usize]) -> Tensor {
        assert!(!offsets.is_empty(), "offsets must contain batch+1 entries");
        assert_eq!(
            offsets.last().copied(),
            Some(indices.len()),
            "offsets must end at indices.len()"
        );
        let batch = offsets.len() - 1;
        let mut out = Tensor::zeros(batch, self.dim);
        for b in 0..batch {
            let dst = out.row_mut(b);
            for &idx in &indices[offsets[b]..offsets[b + 1]] {
                let src = &self.data[idx as usize * self.dim..(idx as usize + 1) * self.dim];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += bf16_to_f32(s);
                }
            }
        }
        out
    }

    /// Sparse SGD in mixed precision: dequantise the row, update in f32,
    /// requantise — the standard mixed-precision embedding update.
    pub fn sgd_step_sparse(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "gradient width mismatch");
        for (idx, g) in grad.iter() {
            let i = idx as usize * self.dim;
            for (slot, &gv) in self.data[i..i + self.dim].iter_mut().zip(g) {
                let updated = bf16_to_f32(*slot) - lr * gv;
                *slot = f32_to_bf16(updated);
            }
        }
    }

    /// Maximum absolute dequantisation error against an f32 reference
    /// table of identical shape.
    pub fn max_abs_error(&self, reference: &crate::table::EmbeddingTable) -> f32 {
        assert_eq!(reference.rows(), self.rows, "shape mismatch");
        assert_eq!(reference.dim(), self.dim, "shape mismatch");
        self.data
            .iter()
            .zip(reference.weights().as_slice())
            .map(|(&b, &r)| (bf16_to_f32(b) - r).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::EmbeddingTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bf16_round_trip_special_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, f32::INFINITY, f32::NEG_INFINITY] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)), v, "value {v}");
        }
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_relative_error_is_bounded() {
        // bf16 keeps 7 explicit mantissa bits: relative rounding error is
        // at most half a step, 2^-8 = 0.39%.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-100.0..100.0);
            let q = bf16_to_f32(f32_to_bf16(v));
            if v.abs() > 1e-3 {
                assert!(((q - v) / v).abs() <= 1.0 / 256.0, "{v} -> {q}");
            }
        }
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // bf16's step at 1.0 is 2^-7; the midpoint 1 + 2^-8 ties and
        // round-to-nearest-even keeps the even mantissa (1.0).
        let v = 1.0f32 + 1.0 / 256.0;
        assert_eq!(bf16_to_f32(f32_to_bf16(v)), 1.0);
        // Above the midpoint rounds up to 1 + 2^-7.
        let v = 1.0f32 + 1.5 / 256.0;
        assert!((bf16_to_f32(f32_to_bf16(v)) - (1.0 + 1.0 / 128.0)).abs() < 1e-9);
        // Just below the midpoint rounds down.
        let v = 1.0f32 + 0.9 / 256.0;
        assert_eq!(bf16_to_f32(f32_to_bf16(v)), 1.0);
    }

    #[test]
    fn half_table_is_half_the_bytes() {
        let mut rng = StdRng::seed_from_u64(2);
        let f32_table = EmbeddingTable::new(1_000, 16, &mut rng);
        let bf16_table = Bf16EmbeddingTable::from_f32(&f32_table);
        assert_eq!(bf16_table.size_bytes() * 2, f32_table.size_bytes());
        assert!(bf16_table.max_abs_error(&f32_table) < 1e-3);
    }

    #[test]
    fn lookup_matches_f32_within_quantisation() {
        let mut rng = StdRng::seed_from_u64(3);
        let f32_table = EmbeddingTable::new(500, 8, &mut rng);
        let half = Bf16EmbeddingTable::from_f32(&f32_table);
        let idx = [7u32, 7, 123, 499];
        let off = [0usize, 2, 3, 4];
        let a = f32_table.lookup_bag(&idx, &off);
        let b = half.lookup_bag(&idx, &off);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 2e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn mixed_precision_training_converges_to_the_quantisation_floor() {
        // Push a row towards a target through quantised updates. bf16 SGD
        // stalls once lr·grad falls under half a quantisation step — the
        // update rounds back to the old value. This is exactly the
        // accuracy-revalidation burden the paper cites when arguing for
        // full-precision training (§V).
        let mut rng = StdRng::seed_from_u64(4);
        let mut table = Bf16EmbeddingTable::new(8, 4, &mut rng);
        let target = [0.25f32, -0.5, 0.75, 0.0];
        for _ in 0..500 {
            let row = table.row_f32(3);
            let mut g = SparseGrad::new(4);
            let grad: Vec<f32> = row.iter().zip(&target).map(|(&r, &t)| 2.0 * (r - t)).collect();
            g.accumulate(3, &grad);
            table.sgd_step_sparse(&g, 0.05);
        }
        for (v, t) in table.row_f32(3).iter().zip(&target) {
            // Converges, but only to within the bf16 stall radius
            // (≈ step/(2·lr·2) ≈ 2% here), not to f32 precision.
            assert!((v - t).abs() < 0.05, "row {v} vs target {t}");
        }
    }
}
