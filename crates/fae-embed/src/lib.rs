//! # fae-embed — embedding-table substrate
//!
//! Embedding tables are the memory-bound half of a recommendation model and
//! the object the FAE paper partitions into *hot* and *cold* halves. This
//! crate provides:
//!
//! * [`EmbeddingTable`] — a dense `rows × dim` table with CSR-style bag
//!   lookups (sum pooling), sparse gradient accumulation and sparse SGD,
//! * [`AccessCounter`] — per-row access statistics (the paper's *embedding
//!   logger* writes into one of these),
//! * [`HotColdPartition`] — the hot/cold row split induced by an access
//!   threshold, with global→hot-local index remapping,
//! * [`HotEmbeddingBag`] — the extracted hot rows as a compact table that
//!   fits in GPU memory, plus write-back to the master table,
//! * [`ReplicatedHotEmbedding`] — N device replicas of a hot bag with
//!   gradient all-reduce, modelling the paper's *embedding replicator*,
//! * [`ShardedEmbeddingTable`] — row-range shards behind per-shard locks
//!   for Hogwild-style concurrent lookups and sparse SGD from the parallel
//!   execution engine's worker threads,
//! * [`sparse::SparseGrad`] — coalesced sparse gradients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deferred;
pub mod half;
pub mod partition;
pub mod quant;
pub mod replica;
pub mod sharded;
pub mod sparse;
pub mod stats;
pub mod table;

pub use deferred::{DeferredSparse, SkipStats};
pub use half::Bf16EmbeddingTable;
pub use partition::{HotColdPartition, RowClass};
pub use quant::{dequantize, quantize_row, TieredTable};
pub use replica::ReplicatedHotEmbedding;
pub use sharded::ShardedEmbeddingTable;
pub use sparse::{RowwiseAdagrad, SparseGrad};
pub use stats::AccessCounter;
pub use table::{EmbeddingTable, HotEmbeddingBag};
