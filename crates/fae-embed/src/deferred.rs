//! Deferred sparse-gradient state for the stale-skip trainer mode.
//!
//! *Popularity-Based Skipping of Stale Embeddings* (arXiv 2404.04270, by
//! the FAE authors) observes that the optimizer apply for a rarely-used
//! (cold) embedding row can be elided: its gradient is tiny, and by the
//! time the row is read again the update would have been stale anyway.
//! [`DeferredSparse`] implements that contract. Cold-row gradients are
//! *absorbed* into a per-table pending pool instead of being applied;
//! a pending row is flushed (its accumulated gradient applied in one
//! sparse-SGD step) when
//!
//! 1. the accumulated update magnitude crosses the staleness threshold
//!    (`lr · ‖g‖∞ ≥ threshold` — the update would move some weight by at
//!    least `threshold`, so it is no longer negligible),
//! 2. the row is about to be read (the trainer flushes the access set of
//!    the next batch, so a forward pass never sees starved weights), or
//! 3. a checkpoint is written (`flush_all`) — the checkpoint then
//!    snapshots a master with no hidden state, keeping resume
//!    bit-identical.
//!
//! Whatever is still pending when training ends is *dropped*
//! ([`DeferredSparse::drop_pending`]): those are exactly the stale
//! updates the paper skips. Hot rows are never deferred — they pass
//! through [`DeferredSparse::absorb`] untouched.
//!
//! Plain SGD is linear in the gradient, so flushing an accumulated sum
//! in one apply equals applying each contribution as it arrived (up to
//! float associativity); only *dropped* rows diverge from eager
//! training, and the fig12-parity harness bounds that divergence.

use std::collections::BTreeMap;

use crate::partition::HotColdPartition;
use crate::sparse::SparseGrad;

/// Lifetime counters of one stale-skip run (exported as `skip.*`
/// telemetry counters and into the `TrainReport`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Row-updates absorbed into the pending pool instead of applied.
    pub deferred: u64,
    /// Pending rows flushed because the accumulated magnitude crossed
    /// the staleness threshold.
    pub flushed_threshold: u64,
    /// Pending rows flushed because the next batch reads them.
    pub flushed_access: u64,
    /// Pending rows flushed by a checkpoint (`flush_all`).
    pub flushed_checkpoint: u64,
    /// Pending rows discarded at end of run — the elided stale updates.
    pub dropped: u64,
}

/// Per-table pool of deferred cold-row gradients (see module docs).
#[derive(Clone, Debug)]
pub struct DeferredSparse {
    dim: usize,
    /// Flush threshold in weight-delta units: a pending row flushes once
    /// `lr · ‖accumulated‖∞` reaches it.
    threshold: f32,
    lr: f32,
    /// Pending accumulated gradients, keyed by global row id. A `BTreeMap`
    /// keeps flush order deterministic.
    pending: Vec<BTreeMap<u32, Box<[f32]>>>,
    stats: SkipStats,
}

impl DeferredSparse {
    /// An empty pool for `num_tables` tables of width `dim`. `threshold`
    /// is in weight-delta units (see [`SkipStats`] docs); `lr` is the
    /// trainer's learning rate, used to convert gradient magnitude into
    /// weight delta.
    pub fn new(num_tables: usize, dim: usize, threshold: f32, lr: f32) -> Self {
        Self {
            dim,
            threshold,
            lr,
            pending: (0..num_tables).map(|_| BTreeMap::new()).collect(),
            stats: SkipStats::default(),
        }
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> SkipStats {
        self.stats
    }

    /// Rows currently pending across all tables.
    pub fn pending_rows(&self) -> usize {
        self.pending.iter().map(BTreeMap::len).sum()
    }

    /// Splits a step's gradients into *apply now* and *defer*. Hot rows
    /// and cold rows whose accumulated magnitude crosses the threshold
    /// come back (accumulated) in the returned gradients; the rest stay
    /// pending. Returns the gradients to apply and the number of
    /// row-updates deferred this step.
    pub fn absorb(
        &mut self,
        grads: &[SparseGrad],
        partitions: &[HotColdPartition],
    ) -> (Vec<SparseGrad>, u64) {
        assert_eq!(grads.len(), self.pending.len(), "one gradient per table");
        assert_eq!(partitions.len(), self.pending.len(), "one partition per table");
        let mut deferred_now = 0u64;
        let mut out = Vec::with_capacity(grads.len());
        for ((g, p), pool) in grads.iter().zip(partitions).zip(&mut self.pending) {
            let mut apply = SparseGrad::new(self.dim);
            for (row, grad) in g.iter() {
                if p.is_hot(row) {
                    apply.accumulate(row, grad);
                    continue;
                }
                if let Some(acc) = pool.get_mut(&row) {
                    for (a, &v) in acc.iter_mut().zip(grad) {
                        *a += v;
                    }
                    let maxabs = acc.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    if self.lr * maxabs >= self.threshold {
                        let acc = pool.remove(&row).unwrap_or_default();
                        apply.accumulate(row, &acc);
                        self.stats.flushed_threshold += 1;
                    } else {
                        deferred_now += 1;
                        self.stats.deferred += 1;
                    }
                    continue;
                }
                // Not pending: a row already over the threshold passes
                // straight through — no pool allocation, no re-read.
                let maxabs = grad.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                if self.lr * maxabs >= self.threshold {
                    apply.accumulate(row, grad);
                    self.stats.flushed_threshold += 1;
                } else {
                    pool.insert(row, grad.to_vec().into_boxed_slice());
                    deferred_now += 1;
                    self.stats.deferred += 1;
                }
            }
            out.push(apply);
        }
        (out, deferred_now)
    }

    /// Takes the pending gradients of every row in `access` (per-table
    /// row-id lists; duplicates are fine) — the access set of the batch
    /// about to run — so its forward pass reads fully-applied weights.
    /// Returns `None` when nothing was pending, and the number of rows
    /// flushed otherwise.
    pub fn take_for_access<S: AsRef<[u32]>>(
        &mut self,
        access: &[S],
    ) -> Option<(Vec<SparseGrad>, u64)> {
        assert_eq!(access.len(), self.pending.len(), "one access set per table");
        let mut flushed = 0u64;
        let mut out = Vec::with_capacity(access.len());
        for (rows, pool) in access.iter().zip(&mut self.pending) {
            let mut g = SparseGrad::new(self.dim);
            for &row in rows.as_ref() {
                if let Some(acc) = pool.remove(&row) {
                    g.accumulate(row, &acc);
                    flushed += 1;
                }
            }
            out.push(g);
        }
        if flushed == 0 {
            return None;
        }
        self.stats.flushed_access += flushed;
        Some((out, flushed))
    }

    /// Flushes everything pending — the checkpoint hook. The checkpoint
    /// then snapshots a master carrying no hidden state, so a resumed
    /// run (which starts with an empty pool) is bit-identical to one
    /// that kept going. Returns `None` when nothing was pending.
    pub fn flush_all(&mut self) -> Option<(Vec<SparseGrad>, u64)> {
        let mut flushed = 0u64;
        let mut out = Vec::with_capacity(self.pending.len());
        for pool in &mut self.pending {
            let mut g = SparseGrad::new(self.dim);
            for (row, acc) in std::mem::take(pool) {
                g.accumulate(row, &acc);
                flushed += 1;
            }
            out.push(g);
        }
        if flushed == 0 {
            return None;
        }
        self.stats.flushed_checkpoint += flushed;
        Some((out, flushed))
    }

    /// Discards everything still pending — the end-of-run elision. These
    /// rows' accumulated updates never crossed the threshold and were
    /// never read again: the stale updates the paper skips outright.
    /// Returns how many rows were dropped.
    pub fn drop_pending(&mut self) -> u64 {
        let mut dropped = 0u64;
        for pool in &mut self.pending {
            dropped += pool.len() as u64;
            pool.clear();
        }
        self.stats.dropped += dropped;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AccessCounter;

    fn parts(rows: usize, hot: &[u32]) -> Vec<HotColdPartition> {
        let mut c = AccessCounter::new(rows);
        for &r in hot {
            c.record(r);
            c.record(r);
        }
        vec![HotColdPartition::from_counts(&c, 2)]
    }

    fn grad(dim: usize, rows: &[(u32, f32)]) -> Vec<SparseGrad> {
        let mut g = SparseGrad::new(dim);
        for &(r, v) in rows {
            g.accumulate(r, &vec![v; dim]);
        }
        vec![g]
    }

    #[test]
    fn hot_rows_pass_through_untouched() {
        let p = parts(10, &[3]);
        let mut d = DeferredSparse::new(1, 4, 0.5, 0.1);
        let (apply, deferred) = d.absorb(&grad(4, &[(3, 1.0)]), &p);
        assert_eq!(deferred, 0);
        assert_eq!(apply[0].get(3).unwrap(), &[1.0; 4]);
        assert_eq!(d.pending_rows(), 0);
    }

    #[test]
    fn small_cold_updates_defer_until_threshold() {
        let p = parts(10, &[]);
        // threshold 0.5 at lr 0.1: flush once |acc| reaches 5.0.
        let mut d = DeferredSparse::new(1, 4, 0.5, 0.1);
        let (apply, deferred) = d.absorb(&grad(4, &[(7, 2.0)]), &p);
        assert_eq!(deferred, 1);
        assert!(apply[0].is_empty());
        assert_eq!(d.pending_rows(), 1);
        // Second contribution pushes |acc| to 5.0: flushes accumulated.
        let (apply, deferred) = d.absorb(&grad(4, &[(7, 3.0)]), &p);
        assert_eq!(deferred, 0);
        assert_eq!(apply[0].get(7).unwrap(), &[5.0; 4]);
        assert_eq!(d.pending_rows(), 0);
        assert_eq!(d.stats().flushed_threshold, 1);
    }

    #[test]
    fn access_flush_returns_accumulated_pending() {
        let p = parts(10, &[]);
        let mut d = DeferredSparse::new(1, 2, 10.0, 0.1);
        d.absorb(&grad(2, &[(1, 1.0), (4, 2.0)]), &p);
        let (flush, n) = d.take_for_access(&[vec![4, 9, 4]]).expect("row 4 pending");
        assert_eq!(n, 1);
        assert_eq!(flush[0].get(4).unwrap(), &[2.0; 2]);
        assert_eq!(d.pending_rows(), 1);
        assert!(d.take_for_access(&[vec![9]]).is_none());
    }

    #[test]
    fn flush_all_then_drop_pending_account_separately() {
        let p = parts(10, &[]);
        let mut d = DeferredSparse::new(1, 2, 10.0, 0.1);
        d.absorb(&grad(2, &[(1, 1.0), (2, 1.0)]), &p);
        let (_, n) = d.flush_all().expect("two rows pending");
        assert_eq!(n, 2);
        assert!(d.flush_all().is_none());
        d.absorb(&grad(2, &[(5, 1.0)]), &p);
        assert_eq!(d.drop_pending(), 1);
        let s = d.stats();
        assert_eq!((s.flushed_checkpoint, s.dropped), (2, 1));
    }

    #[test]
    fn deferred_then_flushed_equals_eager_sum() {
        // Linearity: absorb twice then flush == one accumulated apply.
        let p = parts(10, &[]);
        let mut d = DeferredSparse::new(1, 3, 100.0, 0.1);
        d.absorb(&grad(3, &[(2, 0.25)]), &p);
        d.absorb(&grad(3, &[(2, 0.5)]), &p);
        let (flush, _) = d.flush_all().expect("pending");
        assert_eq!(flush[0].get(2).unwrap(), &[0.75; 3]);
    }
}
