//! Row-range-sharded embedding table for concurrent workers.
//!
//! The parallel execution engine runs one worker thread per simulated
//! device, and every worker both *reads* hot rows (bag lookups) and
//! *writes* them (sparse SGD). A single `RwLock<EmbeddingTable>` would
//! serialise all of that; instead the rows are split into N contiguous
//! range shards, each behind its own lock, in the spirit of Hogwild!
//! sharded parameter servers and the frequency-aware GPU cache literature:
//! lookups take cheap shared locks, and gradient writers only contend when
//! they touch the *same* shard. Within a shard updates are applied without
//! finer-grained locking — the Hogwild-style bet that row sets rarely
//! collide.
//!
//! Determinism note: concurrent *writers to the same row* would make the
//! result depend on scheduling, so the execution engine never does that —
//! it merges worker gradients in worker order first, then applies each
//! shard's slice of the merged gradient on its own thread
//! ([`ShardedEmbeddingTable::sgd_step_sparse_parallel`]). Shards hold
//! disjoint rows, so that parallel application is bit-identical to the
//! serial one.

use std::sync::RwLock;

use fae_nn::Tensor;

use crate::sparse::SparseGrad;
use crate::table::EmbeddingTable;

/// A `rows × dim` embedding table split into contiguous row-range shards,
/// each behind its own `RwLock`, supporting concurrent bag lookups and
/// sparse SGD from multiple worker threads.
///
/// ```
/// use fae_embed::{EmbeddingTable, ShardedEmbeddingTable};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let serial = EmbeddingTable::new(100, 8, &mut rng);
/// let sharded = ShardedEmbeddingTable::from_table(&serial, 4);
/// let a = serial.lookup_bag(&[3, 97], &[0, 2]);
/// let b = sharded.lookup_bag(&[3, 97], &[0, 2]);
/// assert_eq!(a.as_slice(), b.as_slice());
/// ```
pub struct ShardedEmbeddingTable {
    /// One weight block per shard; shard `s` holds global rows
    /// `starts[s]..starts[s + 1]`, locally indexed from zero.
    shards: Vec<RwLock<Tensor>>,
    /// Shard start rows, `num_shards + 1` entries ending at `rows`.
    starts: Vec<usize>,
    rows: usize,
    dim: usize,
    /// Precomputed row-range math for `shard_of`: the first `shard_extra`
    /// shards are `shard_base + 1` rows wide (ending at row `shard_cut`),
    /// the rest `shard_base` wide. Computing these once at construction
    /// keeps the per-index translation on the lookup path to one compare
    /// and one division.
    shard_base: usize,
    shard_extra: usize,
    shard_cut: usize,
}

impl ShardedEmbeddingTable {
    /// Splits `table` into `num_shards` contiguous row ranges whose sizes
    /// differ by at most one row. The shard count is clamped to the row
    /// count (a shard must own at least one row).
    pub fn from_table(table: &EmbeddingTable, num_shards: usize) -> Self {
        let rows = table.rows();
        let dim = table.dim();
        let n = num_shards.max(1).min(rows.max(1));
        let base = rows / n;
        let extra = rows % n;
        let mut starts = Vec::with_capacity(n + 1);
        let mut shards = Vec::with_capacity(n);
        let mut start = 0usize;
        for s in 0..n {
            starts.push(start);
            let len = base + usize::from(s < extra);
            let mut block = Tensor::zeros(len.max(1), dim);
            for local in 0..len {
                block.row_mut(local).copy_from_slice(table.row((start + local) as u32));
            }
            shards.push(RwLock::new(block));
            start += len;
        }
        starts.push(rows);
        Self {
            shards,
            starts,
            rows,
            dim,
            shard_base: base,
            shard_extra: extra,
            shard_cut: (base + 1) * extra,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Size in bytes of the f32 weights.
    pub fn size_bytes(&self) -> usize {
        self.rows * self.dim * std::mem::size_of::<f32>()
    }

    /// The shard owning global row `row`.
    #[inline]
    fn shard_of(&self, row: usize) -> usize {
        debug_assert!(row < self.rows, "row {row} out of range {}", self.rows);
        // Shards are ⌈rows/n⌉ wide for the first `shard_extra`, ⌊rows/n⌋
        // after; the widths were precomputed at construction.
        if row < self.shard_cut {
            row / (self.shard_base + 1)
        } else {
            // shard_base == 0 only when n > rows; then every row sits in
            // the `row < shard_cut` range above and this branch is
            // unreachable, but clippy wants the division guarded anyway.
            (row - self.shard_cut)
                .checked_div(self.shard_base)
                .map_or(self.shards.len() - 1, |d| self.shard_extra + d)
        }
    }

    /// Copies one row out (crossing the shard lock).
    ///
    /// Lock poisoning is recovered everywhere in this type rather than
    /// propagated: shard data is plain `f32`s with no invariant a
    /// panicked writer could half-establish, so the poisoned guard's
    /// contents are still valid weights.
    pub fn row(&self, idx: u32) -> Vec<f32> {
        let s = self.shard_of(idx as usize);
        let guard = self.shards[s].read().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.row(idx as usize - self.starts[s]).to_vec()
    }

    /// Overwrites one row.
    pub fn set_row(&self, idx: u32, values: &[f32]) {
        let s = self.shard_of(idx as usize);
        let mut guard = self.shards[s].write().unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.row_mut(idx as usize - self.starts[s]).copy_from_slice(values);
    }

    /// Sum-pooled bag lookup, identical in semantics to
    /// [`EmbeddingTable::lookup_bag`]. All shard read locks are taken once
    /// up front so concurrent lookups never serialise against each other
    /// and a concurrent writer cannot tear a single lookup.
    pub fn lookup_bag(&self, indices: &[u32], offsets: &[usize]) -> Tensor {
        assert!(!offsets.is_empty(), "offsets must contain batch+1 entries");
        assert_eq!(
            offsets.last().copied(),
            Some(indices.len()),
            "offsets must end at indices.len()"
        );
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(std::sync::PoisonError::into_inner))
            .collect();
        let batch = offsets.len() - 1;
        let mut out = Tensor::zeros(batch, self.dim);
        for b in 0..batch {
            let dst = out.row_mut(b);
            for &idx in &indices[offsets[b]..offsets[b + 1]] {
                let s = self.shard_of(idx as usize);
                // Elementwise 8-wide add: same accumulation order as the
                // scalar loop it replaced (bag order is preserved).
                fae_nn::lanes::add_assign(dst, guards[s].row(idx as usize - self.starts[s]));
            }
        }
        out
    }

    /// Sparse SGD update `row -= lr * grad`, grouping touched rows by
    /// shard and taking each shard's write lock exactly once. Concurrent
    /// callers touching disjoint shards do not contend at all.
    pub fn sgd_step_sparse(&self, grad: &SparseGrad, lr: f32) {
        let groups = self.group_by_shard(grad);
        for (s, rows) in groups.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            self.apply_to_shard(s, rows, lr);
        }
    }

    /// Sparse SGD with one thread per touched shard. Shards hold disjoint
    /// rows, so this is bit-identical to [`Self::sgd_step_sparse`] — it
    /// just spends the wall-clock concurrently. Spawning is skipped when
    /// only one shard is touched.
    pub fn sgd_step_sparse_parallel(&self, grad: &SparseGrad, lr: f32) {
        let groups = self.group_by_shard(grad);
        let touched = groups.iter().filter(|g| !g.is_empty()).count();
        if touched <= 1 {
            for (s, rows) in groups.iter().enumerate() {
                if !rows.is_empty() {
                    self.apply_to_shard(s, rows, lr);
                }
            }
            return;
        }
        std::thread::scope(|scope| {
            for (s, rows) in groups.iter().enumerate() {
                if rows.is_empty() {
                    continue;
                }
                scope.spawn(move || self.apply_to_shard(s, rows, lr));
            }
        });
    }

    fn group_by_shard<'g>(&self, grad: &'g SparseGrad) -> Vec<Vec<(u32, &'g [f32])>> {
        assert_eq!(grad.dim(), self.dim, "sparse grad width mismatch");
        let mut groups: Vec<Vec<(u32, &[f32])>> = vec![Vec::new(); self.shards.len()];
        for (idx, g) in grad.iter() {
            groups[self.shard_of(idx as usize)].push((idx, g));
        }
        groups
    }

    fn apply_to_shard(&self, s: usize, rows: &[(u32, &[f32])], lr: f32) {
        let mut guard = self.shards[s].write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let start = self.starts[s];
        for &(idx, g) in rows {
            fae_nn::lanes::axpy(guard.row_mut(idx as usize - start), -lr, g);
        }
    }

    /// Reassembles a plain [`EmbeddingTable`] snapshot (checkpointing and
    /// hot→master write-back).
    pub fn to_table(&self) -> EmbeddingTable {
        let mut weights = Tensor::zeros(self.rows.max(1), self.dim);
        for (s, shard) in self.shards.iter().enumerate() {
            let guard = shard.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            let start = self.starts[s];
            for local in 0..(self.starts[s + 1] - start) {
                weights.row_mut(start + local).copy_from_slice(guard.row(local));
            }
        }
        EmbeddingTable::from_weights(weights)
    }

    /// Overwrites every row from `table` (master→hot refresh). Shapes
    /// must match.
    pub fn copy_from(&self, table: &EmbeddingTable) {
        assert_eq!(table.rows(), self.rows, "row count mismatch");
        assert_eq!(table.dim(), self.dim, "dim mismatch");
        for (s, shard) in self.shards.iter().enumerate() {
            let mut guard = shard.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            let start = self.starts[s];
            for local in 0..(self.starts[s + 1] - start) {
                guard.row_mut(local).copy_from_slice(table.row((start + local) as u32));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn serial(rows: usize, dim: usize, seed: u64) -> EmbeddingTable {
        let mut rng = StdRng::seed_from_u64(seed);
        EmbeddingTable::new(rows, dim, &mut rng)
    }

    #[test]
    fn shard_of_covers_every_row_exactly_once() {
        for rows in [1usize, 2, 5, 7, 64, 100] {
            for n in [1usize, 2, 3, 4, 8, 200] {
                let t = serial(rows, 2, 1);
                let st = ShardedEmbeddingTable::from_table(&t, n);
                let mut prev = 0;
                for r in 0..rows {
                    let s = st.shard_of(r);
                    assert!(s >= prev, "shard ids must be monotone");
                    assert!(st.starts[s] <= r && r < st.starts[s + 1]);
                    prev = s;
                }
                assert_eq!(*st.starts.last().unwrap(), rows);
            }
        }
    }

    #[test]
    fn lookup_matches_serial_table() {
        let t = serial(50, 4, 7);
        let st = ShardedEmbeddingTable::from_table(&t, 4);
        let indices = [0u32, 49, 25, 13, 13, 2];
        let offsets = [0usize, 2, 2, 5, 6];
        assert_eq!(
            t.lookup_bag(&indices, &offsets).as_slice(),
            st.lookup_bag(&indices, &offsets).as_slice()
        );
    }

    #[test]
    fn sparse_step_serial_and_parallel_match_reference() {
        let mut reference = serial(40, 3, 9);
        let st_serial = ShardedEmbeddingTable::from_table(&reference, 4);
        let st_par = ShardedEmbeddingTable::from_table(&reference, 4);
        let mut g = SparseGrad::new(3);
        for idx in [0u32, 5, 10, 11, 25, 39] {
            g.accumulate(idx, &[0.5, -1.0, 2.0]);
        }
        reference.sgd_step_sparse(&g, 0.1);
        st_serial.sgd_step_sparse(&g, 0.1);
        st_par.sgd_step_sparse_parallel(&g, 0.1);
        for r in 0..40u32 {
            assert_eq!(reference.row(r), st_serial.row(r).as_slice());
            assert_eq!(reference.row(r), st_par.row(r).as_slice());
        }
    }

    #[test]
    fn to_table_round_trips() {
        let t = serial(17, 5, 3);
        let st = ShardedEmbeddingTable::from_table(&t, 3);
        let back = st.to_table();
        for r in 0..17u32 {
            assert_eq!(t.row(r), back.row(r));
        }
    }

    #[test]
    fn copy_from_refreshes_all_rows() {
        let a = serial(12, 2, 1);
        let b = serial(12, 2, 2);
        let st = ShardedEmbeddingTable::from_table(&a, 5);
        st.copy_from(&b);
        for r in 0..12u32 {
            assert_eq!(st.row(r), b.row(r));
        }
    }

    #[test]
    fn concurrent_disjoint_updates_are_exact() {
        // Two writers hitting different shards concurrently must both land
        // exactly — the per-shard locks mean no lost updates.
        let t = EmbeddingTable::from_weights(Tensor::zeros(8, 1));
        let st = ShardedEmbeddingTable::from_table(&t, 4);
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let st = &st;
                s.spawn(move || {
                    let mut g = SparseGrad::new(1);
                    g.accumulate(w * 2, &[1.0]);
                    g.accumulate(w * 2 + 1, &[1.0]);
                    for _ in 0..100 {
                        st.sgd_step_sparse(&g, -1.0); // += 1 per iteration
                    }
                });
            }
        });
        for r in 0..8u32 {
            assert_eq!(st.row(r), vec![100.0]);
        }
    }

    #[test]
    fn tiny_table_with_more_shards_than_rows() {
        let t = serial(2, 3, 4);
        let st = ShardedEmbeddingTable::from_table(&t, 16);
        assert_eq!(st.num_shards(), 2);
        assert_eq!(st.row(1), t.row(1));
    }
}
