//! Replicated hot-embedding bags — the paper's *embedding replicator*
//! (§III, component 3).
//!
//! "Copies of the hot embedding tables are replicated across all the GPU
//! devices. ... we perform all-reduce on all the gradients including both
//! embedding and neural network layers"; the replicas therefore stay
//! bit-identical after every step, which this module enforces and tests.

use fae_nn::Tensor;

use crate::sparse::SparseGrad;
use crate::table::{EmbeddingTable, HotEmbeddingBag};

/// N device-local replicas of one hot-embedding bag, kept consistent via
/// gradient all-reduce.
pub struct ReplicatedHotEmbedding {
    replicas: Vec<HotEmbeddingBag>,
}

impl ReplicatedHotEmbedding {
    /// Replicates `bag` onto `devices` simulated GPUs.
    pub fn replicate(bag: &HotEmbeddingBag, devices: usize) -> Self {
        assert!(devices >= 1, "need at least one device");
        Self { replicas: vec![bag.clone(); devices] }
    }

    /// Number of replicas.
    pub fn devices(&self) -> usize {
        self.replicas.len()
    }

    /// One replica (hot-local indexing).
    pub fn replica(&self, device: usize) -> &HotEmbeddingBag {
        &self.replicas[device]
    }

    /// Per-device forward lookup against that device's replica.
    pub fn lookup_bag(&self, device: usize, indices: &[u32], offsets: &[usize]) -> Tensor {
        self.replicas[device].table().lookup_bag(indices, offsets)
    }

    /// All-reduce (average) the per-device sparse gradients, then apply the
    /// averaged update to every replica. Returns the averaged gradient so
    /// callers can account its wire bytes.
    pub fn allreduce_and_step(&mut self, per_device: &[SparseGrad], lr: f32) -> SparseGrad {
        assert_eq!(per_device.len(), self.replicas.len(), "one gradient per device required");
        let mut avg = SparseGrad::new(per_device[0].dim());
        for g in per_device {
            avg.merge(g);
        }
        avg.scale(1.0 / per_device.len() as f32);
        for r in &mut self.replicas {
            r.table_mut().sgd_step_sparse(&avg, lr);
        }
        avg
    }

    /// Verifies every replica holds identical weights (the invariant the
    /// all-reduce protocol guarantees). Returns the max absolute deviation.
    pub fn max_divergence(&self) -> f32 {
        let first = self.replicas[0].table().weights();
        self.replicas[1..]
            .iter()
            .map(|r| r.table().weights().sub(first).max_abs())
            .fold(0.0, f32::max)
    }

    /// Writes replica 0's rows back into the master table (hot→cold
    /// transition). All replicas are identical, so any replica works.
    pub fn write_back(&self, master: &mut EmbeddingTable) {
        self.replicas[0].write_back(master);
    }

    /// Refreshes every replica from the master table (cold→hot transition).
    pub fn refresh_from(&mut self, master: &EmbeddingTable) {
        for r in &mut self.replicas {
            r.refresh_from(master);
        }
    }

    /// Bytes moved per CPU→GPU refresh, summed over devices.
    pub fn refresh_bytes(&self) -> usize {
        self.replicas.iter().map(|r| r.sync_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fae_nn::Tensor;

    fn bag_4x2() -> (EmbeddingTable, HotEmbeddingBag) {
        let master =
            EmbeddingTable::from_weights(Tensor::from_fn(4, 2, |r, c| (r * 10 + c) as f32));
        let bag = HotEmbeddingBag::extract(&master, vec![0, 2, 3]);
        (master, bag)
    }

    #[test]
    fn replicas_start_identical() {
        let (_, bag) = bag_4x2();
        let rep = ReplicatedHotEmbedding::replicate(&bag, 4);
        assert_eq!(rep.devices(), 4);
        assert_eq!(rep.max_divergence(), 0.0);
    }

    #[test]
    fn allreduce_keeps_replicas_identical() {
        let (_, bag) = bag_4x2();
        let mut rep = ReplicatedHotEmbedding::replicate(&bag, 2);
        // Device 0 touches hot-local row 0, device 1 touches row 2.
        let mut g0 = SparseGrad::new(2);
        g0.accumulate(0, &[2.0, 2.0]);
        let mut g1 = SparseGrad::new(2);
        g1.accumulate(2, &[4.0, 4.0]);
        let avg = rep.allreduce_and_step(&[g0, g1], 1.0);
        assert_eq!(rep.max_divergence(), 0.0);
        // Averaged gradient halves each contribution.
        assert_eq!(avg.get(0), Some(&[1.0, 1.0][..]));
        assert_eq!(avg.get(2), Some(&[2.0, 2.0][..]));
        // Row 0 was 0,1 -> 0-1, 1-1.
        assert_eq!(rep.replica(0).table().row(0), &[-1.0, 0.0]);
        assert_eq!(rep.replica(1).table().row(0), &[-1.0, 0.0]);
    }

    #[test]
    fn single_device_allreduce_is_plain_sgd() {
        let (_, bag) = bag_4x2();
        let mut rep = ReplicatedHotEmbedding::replicate(&bag, 1);
        let mut g = SparseGrad::new(2);
        g.accumulate(1, &[1.0, 1.0]); // hot-local 1 == global 2 (weights 20,21)
        rep.allreduce_and_step(&[g], 0.5);
        assert_eq!(rep.replica(0).table().row(1), &[19.5, 20.5]);
    }

    #[test]
    fn write_back_then_refresh_round_trip() {
        let (mut master, bag) = bag_4x2();
        let mut rep = ReplicatedHotEmbedding::replicate(&bag, 3);
        let mut g = SparseGrad::new(2);
        g.accumulate(0, &[1.0, 1.0]);
        rep.allreduce_and_step(&[g.clone(), g.clone(), g], 1.0);
        rep.write_back(&mut master);
        assert_eq!(master.row(0), &[-1.0, 0.0]); // global 0 trained on GPU
        assert_eq!(master.row(1), &[10.0, 11.0]); // cold row untouched
        master.set_row(2, &[99.0, 99.0]); // CPU-side cold-phase update
        rep.refresh_from(&master);
        for d in 0..3 {
            assert_eq!(rep.replica(d).table().row(1), &[99.0, 99.0]);
        }
        assert_eq!(rep.max_divergence(), 0.0);
    }

    #[test]
    fn refresh_bytes_scales_with_devices() {
        let (_, bag) = bag_4x2();
        let rep = ReplicatedHotEmbedding::replicate(&bag, 4);
        assert_eq!(rep.refresh_bytes(), 4 * bag.sync_bytes());
    }
}
