//! Hot/cold row partitioning — the output of the paper's *embedding
//! classifier* (§III-B).
//!
//! "The embedding classifier uses the output of the Embedding Logger and
//! the Statistical Optimizer to tag all embedding table entries that meet
//! the access threshold. This requires only one pass of each embedding
//! table." A partition stores the hot set as a membership bitmap plus a
//! dense global→hot-local remap so hot lookups can index the compact
//! [`crate::HotEmbeddingBag`] in O(1).

use serde::{Deserialize, Serialize};

use crate::stats::AccessCounter;

/// Classification of one embedding row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowClass {
    /// Row meets the access threshold; it lives in the replicated hot bag.
    Hot,
    /// Row stays only in the CPU master table.
    Cold,
}

/// Sentinel in the remap table marking a cold row.
const COLD: u32 = u32::MAX;

/// The hot/cold split of one embedding table.
///
/// ```
/// use fae_embed::{AccessCounter, HotColdPartition};
/// let mut counts = AccessCounter::new(4);
/// counts.record_all(&[0, 0, 0, 2]); // row 0: 3 accesses, row 2: 1
/// let p = HotColdPartition::from_counts(&counts, 2);
/// assert!(p.is_hot(0));
/// assert!(!p.is_hot(2));
/// assert_eq!(p.hot_local(0), Some(0)); // compact hot-bag index
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotColdPartition {
    /// global row id -> hot-local id, or `COLD`.
    remap: Vec<u32>,
    /// hot-local id -> global row id (sorted ascending by construction).
    hot_ids: Vec<u32>,
    /// The access cutoff (in absolute sampled accesses) that induced this
    /// partition.
    cutoff: u64,
}

impl HotColdPartition {
    /// Builds the partition: rows with `counts[row] >= cutoff` are hot.
    /// One pass over the counter, as the paper requires.
    pub fn from_counts(counter: &AccessCounter, cutoff: u64) -> Self {
        let mut remap = vec![COLD; counter.rows()];
        let mut hot_ids = Vec::new();
        for (row, &c) in counter.counts().iter().enumerate() {
            if c >= cutoff {
                remap[row] = hot_ids.len() as u32;
                hot_ids.push(row as u32);
            }
        }
        Self { remap, hot_ids, cutoff }
    }

    /// Marks *every* row hot — the paper treats tables under 1 MB as
    /// "de-facto hot" since they trivially fit in GPU memory.
    pub fn all_hot(rows: usize) -> Self {
        Self { remap: (0..rows as u32).collect(), hot_ids: (0..rows as u32).collect(), cutoff: 0 }
    }

    /// Marks every row cold (a degenerate partition used in ablations).
    pub fn all_cold(rows: usize) -> Self {
        Self { remap: vec![COLD; rows], hot_ids: Vec::new(), cutoff: u64::MAX }
    }

    /// Total rows in the table.
    pub fn rows(&self) -> usize {
        self.remap.len()
    }

    /// Number of hot rows.
    pub fn hot_count(&self) -> usize {
        self.hot_ids.len()
    }

    /// Fraction of rows that are hot.
    pub fn hot_fraction(&self) -> f64 {
        if self.remap.is_empty() {
            0.0
        } else {
            self.hot_ids.len() as f64 / self.remap.len() as f64
        }
    }

    /// The absolute access cutoff that induced this partition.
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }

    /// Classifies a row.
    #[inline]
    pub fn classify(&self, row: u32) -> RowClass {
        if self.remap[row as usize] == COLD {
            RowClass::Cold
        } else {
            RowClass::Hot
        }
    }

    /// True when the row is hot.
    #[inline]
    pub fn is_hot(&self, row: u32) -> bool {
        self.remap[row as usize] != COLD
    }

    /// Hot-local id for a global row, or `None` when cold.
    #[inline]
    pub fn hot_local(&self, row: u32) -> Option<u32> {
        let v = self.remap[row as usize];
        (v != COLD).then_some(v)
    }

    /// Global id for a hot-local id.
    #[inline]
    pub fn global_of(&self, hot_local: u32) -> u32 {
        self.hot_ids[hot_local as usize]
    }

    /// Sorted global ids of hot rows (feeds
    /// [`crate::HotEmbeddingBag::extract`]).
    pub fn hot_ids(&self) -> &[u32] {
        &self.hot_ids
    }

    /// Bytes the hot slice of a `dim`-wide f32 table occupies.
    pub fn hot_bytes(&self, dim: usize) -> usize {
        self.hot_ids.len() * dim * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_with(counts: &[u64]) -> AccessCounter {
        let mut c = AccessCounter::new(counts.len());
        for (row, &k) in counts.iter().enumerate() {
            for _ in 0..k {
                c.record(row as u32);
            }
        }
        c
    }

    #[test]
    fn partition_splits_on_cutoff() {
        let c = counter_with(&[5, 0, 3, 1, 3]);
        let p = HotColdPartition::from_counts(&c, 3);
        assert_eq!(p.hot_count(), 3);
        assert_eq!(p.hot_ids(), &[0, 2, 4]);
        assert!(p.is_hot(0) && p.is_hot(2) && p.is_hot(4));
        assert!(!p.is_hot(1) && !p.is_hot(3));
        assert_eq!(p.classify(1), RowClass::Cold);
        assert_eq!(p.classify(2), RowClass::Hot);
    }

    #[test]
    fn remap_is_dense_and_invertible() {
        let c = counter_with(&[0, 9, 0, 9, 9]);
        let p = HotColdPartition::from_counts(&c, 1);
        assert_eq!(p.hot_local(1), Some(0));
        assert_eq!(p.hot_local(3), Some(1));
        assert_eq!(p.hot_local(4), Some(2));
        assert_eq!(p.hot_local(0), None);
        for local in 0..p.hot_count() as u32 {
            assert_eq!(p.hot_local(p.global_of(local)), Some(local));
        }
    }

    #[test]
    fn all_hot_and_all_cold() {
        let hot = HotColdPartition::all_hot(4);
        assert_eq!(hot.hot_count(), 4);
        assert!((hot.hot_fraction() - 1.0).abs() < 1e-12);
        let cold = HotColdPartition::all_cold(4);
        assert_eq!(cold.hot_count(), 0);
        assert_eq!(cold.hot_fraction(), 0.0);
    }

    #[test]
    fn raising_cutoff_shrinks_hot_set_monotonically() {
        let c = counter_with(&[10, 8, 6, 4, 2, 1, 0]);
        let mut prev = usize::MAX;
        for cutoff in 1..=11 {
            let p = HotColdPartition::from_counts(&c, cutoff);
            assert!(p.hot_count() <= prev, "hot set grew when cutoff rose");
            prev = p.hot_count();
        }
        assert_eq!(prev, 0);
    }

    #[test]
    fn hot_bytes_scales_with_dim() {
        let c = counter_with(&[2, 2, 0]);
        let p = HotColdPartition::from_counts(&c, 1);
        assert_eq!(p.hot_bytes(16), 2 * 16 * 4);
    }
}
