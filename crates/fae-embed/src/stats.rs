//! Per-row access statistics — the paper's *embedding logger* (§III-A.2).
//!
//! The logger "keeps track of the number of accesses (k) into each entry
//! for each embedding table for the sampled inputs". Counters are dense
//! `u64` vectors indexed by row id, which is both the fastest structure
//! for the scan-heavy calibrator and the layout the Rand-Em Box samples
//! chunks from.

use serde::{Deserialize, Serialize};

/// Access counts for one embedding table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AccessCounter {
    counts: Vec<u64>,
    total: u64,
}

impl AccessCounter {
    /// Creates a zeroed counter for a table with `rows` rows.
    pub fn new(rows: usize) -> Self {
        Self { counts: vec![0; rows], total: 0 }
    }

    /// Records one access to `row`.
    #[inline]
    pub fn record(&mut self, row: u32) {
        self.counts[row as usize] += 1;
        self.total += 1;
    }

    /// Records a batch of accesses.
    pub fn record_all(&mut self, rows: &[u32]) {
        for &r in rows {
            self.record(r);
        }
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> usize {
        self.counts.len()
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Accesses to one row.
    #[inline]
    pub fn count(&self, row: u32) -> u64 {
        self.counts[row as usize]
    }

    /// Raw counter slice (the Rand-Em Box samples chunks of this).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exact number of rows with `count >= cutoff` — the ground truth the
    /// Rand-Em Box estimates statistically.
    pub fn rows_at_or_above(&self, cutoff: u64) -> usize {
        self.counts.iter().filter(|&&c| c >= cutoff).count()
    }

    /// Fraction of all accesses captured by rows with `count >= cutoff`
    /// (the "hot rows capture 75–92% of accesses" statistic of Fig 2).
    pub fn access_share_at_or_above(&self, cutoff: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hot: u64 = self.counts.iter().filter(|&&c| c >= cutoff).sum();
        hot as f64 / self.total as f64
    }

    /// Access counts sorted descending — the access profile of Fig 7.
    pub fn sorted_profile(&self) -> Vec<u64> {
        let mut p = self.counts.clone();
        p.sort_unstable_by(|a, b| b.cmp(a));
        p
    }

    /// Merges another counter over the same table.
    pub fn merge(&mut self, other: &AccessCounter) {
        assert_eq!(self.counts.len(), other.counts.len(), "counter size mismatch");
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut c = AccessCounter::new(4);
        c.record_all(&[0, 1, 1, 3, 1]);
        assert_eq!(c.total(), 5);
        assert_eq!(c.count(1), 3);
        assert_eq!(c.count(2), 0);
    }

    #[test]
    fn threshold_counting() {
        let mut c = AccessCounter::new(5);
        c.record_all(&[0, 0, 0, 1, 1, 2]);
        assert_eq!(c.rows_at_or_above(1), 3);
        assert_eq!(c.rows_at_or_above(2), 2);
        assert_eq!(c.rows_at_or_above(3), 1);
        assert_eq!(c.rows_at_or_above(4), 0);
    }

    #[test]
    fn access_share_matches_hand_count() {
        let mut c = AccessCounter::new(3);
        c.record_all(&[0, 0, 0, 0, 1, 2]); // row0: 4/6 of accesses
        assert!((c.access_share_at_or_above(4) - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.access_share_at_or_above(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_share_is_zero() {
        let c = AccessCounter::new(10);
        assert_eq!(c.access_share_at_or_above(1), 0.0);
    }

    #[test]
    fn sorted_profile_descends() {
        let mut c = AccessCounter::new(4);
        c.record_all(&[2, 2, 2, 0, 3]);
        assert_eq!(c.sorted_profile(), vec![3, 1, 1, 0]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = AccessCounter::new(2);
        a.record(0);
        let mut b = AccessCounter::new(2);
        b.record_all(&[0, 1]);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.total(), 3);
    }
}
