//! Coalesced sparse gradients for embedding rows.
//!
//! Mini-batch backward passes touch a small, duplicate-heavy set of rows
//! (hot rows especially — that is the paper's whole premise), so gradients
//! are accumulated in a row-keyed map and iterated in sorted row order for
//! determinism.

use fae_nn::lanes;
use std::collections::BTreeMap;

/// Sparse gradient: duplicate contributions to a row are summed into one
/// dense `dim`-length slice.
///
/// Storage is a flat arena — one contiguous `Vec<f32>` holding every
/// touched row back to back, plus a `BTreeMap` from global row id to slot
/// index. Compared to the former map-of-`Vec` layout this does one
/// allocation per *step* (amortised) instead of one per touched row, and
/// accumulation/merge/scale run over contiguous memory with the 8-wide
/// [`lanes`] kernels. The map keeps iteration in ascending row order,
/// which the determinism contract requires (DESIGN.md §14).
#[derive(Clone, Debug, Default)]
pub struct SparseGrad {
    dim: usize,
    /// Global row id → slot index; row `id`'s gradient lives at
    /// `data[slot * dim .. (slot + 1) * dim]`.
    slots: BTreeMap<u32, u32>,
    data: Vec<f32>,
}

impl SparseGrad {
    /// Creates an empty gradient for rows of width `dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim, slots: BTreeMap::new(), data: Vec::new() }
    }

    /// Gradient row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds `grad` into row `idx`.
    pub fn accumulate(&mut self, idx: u32, grad: &[f32]) {
        assert_eq!(grad.len(), self.dim, "sparse grad width mismatch");
        let next = self.slots.len() as u32;
        let slot = *self.slots.entry(idx).or_insert(next);
        if slot == next {
            self.data.resize(self.data.len() + self.dim, 0.0);
        }
        let off = slot as usize * self.dim;
        lanes::add_assign(&mut self.data[off..off + self.dim], grad);
    }

    /// Merges another sparse gradient into this one (used when averaging
    /// data-parallel replicas).
    pub fn merge(&mut self, other: &SparseGrad) {
        assert_eq!(self.dim, other.dim, "sparse grad dim mismatch");
        for (idx, g) in other.iter() {
            self.accumulate(idx, g);
        }
    }

    /// Scales every gradient in place (e.g. 1/num_replicas after a merge).
    pub fn scale(&mut self, s: f32) {
        lanes::scale_assign(&mut self.data, s);
    }

    /// Number of distinct rows with gradient mass.
    pub fn nnz_rows(&self) -> usize {
        self.slots.len()
    }

    /// True when no rows carry gradient.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Bytes this gradient occupies on the wire (row ids + values) — used
    /// by the cost model for gradient-transfer terms.
    pub fn wire_bytes(&self) -> usize {
        self.slots.len() * (std::mem::size_of::<u32>() + self.dim * std::mem::size_of::<f32>())
    }

    /// Iterates `(row_id, grad)` in ascending row order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.slots
            .iter()
            .map(|(&i, &s)| (i, &self.data[s as usize * self.dim..(s as usize + 1) * self.dim]))
    }

    /// Gradient for one row, if present.
    pub fn get(&self, idx: u32) -> Option<&[f32]> {
        self.slots
            .get(&idx)
            .map(|&s| &self.data[s as usize * self.dim..(s as usize + 1) * self.dim])
    }

    /// Like [`remap`](SparseGrad::remap) but borrowing, for callers that
    /// still need the original afterwards (saves the former clone-then-remap
    /// round trip in the hot training loop).
    pub fn remap_ref(&self, f: impl Fn(u32) -> u32) -> SparseGrad {
        let mut out = SparseGrad::new(self.dim);
        for (idx, g) in self.iter() {
            out.accumulate(f(idx), g);
        }
        out
    }

    /// Remaps row ids through `f` (e.g. hot-local → global), preserving
    /// accumulation semantics if two ids collide.
    pub fn remap(self, f: impl Fn(u32) -> u32) -> SparseGrad {
        self.remap_ref(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_duplicates() {
        let mut sg = SparseGrad::new(2);
        sg.accumulate(3, &[1.0, 2.0]);
        sg.accumulate(3, &[10.0, 20.0]);
        sg.accumulate(1, &[5.0, 5.0]);
        assert_eq!(sg.nnz_rows(), 2);
        assert_eq!(sg.get(3), Some(&[11.0, 22.0][..]));
        assert_eq!(sg.get(1), Some(&[5.0, 5.0][..]));
        assert_eq!(sg.get(0), None);
    }

    #[test]
    fn iter_is_sorted_by_row() {
        let mut sg = SparseGrad::new(1);
        for idx in [9u32, 1, 5, 3] {
            sg.accumulate(idx, &[1.0]);
        }
        let order: Vec<u32> = sg.iter().map(|(i, _)| i).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = SparseGrad::new(1);
        a.accumulate(0, &[2.0]);
        let mut b = SparseGrad::new(1);
        b.accumulate(0, &[4.0]);
        b.accumulate(7, &[6.0]);
        a.merge(&b);
        a.scale(0.5);
        assert_eq!(a.get(0), Some(&[3.0][..]));
        assert_eq!(a.get(7), Some(&[3.0][..]));
    }

    #[test]
    fn wire_bytes_counts_ids_and_values() {
        let mut sg = SparseGrad::new(4);
        sg.accumulate(1, &[0.0; 4]);
        sg.accumulate(2, &[0.0; 4]);
        assert_eq!(sg.wire_bytes(), 2 * (4 + 16));
    }

    #[test]
    fn remap_translates_and_coalesces() {
        let mut sg = SparseGrad::new(1);
        sg.accumulate(0, &[1.0]);
        sg.accumulate(1, &[2.0]);
        // Map both onto global row 42.
        let g = sg.remap(|_| 42);
        assert_eq!(g.nnz_rows(), 1);
        assert_eq!(g.get(42), Some(&[3.0][..]));
    }

    #[test]
    fn remap_ref_keeps_original() {
        let mut sg = SparseGrad::new(2);
        sg.accumulate(5, &[1.0, 2.0]);
        sg.accumulate(9, &[3.0, 4.0]);
        let g = sg.remap_ref(|i| i + 100);
        assert_eq!(g.get(105), Some(&[1.0, 2.0][..]));
        assert_eq!(g.get(109), Some(&[3.0, 4.0][..]));
        // Original untouched (no clone needed at the call site).
        assert_eq!(sg.get(5), Some(&[1.0, 2.0][..]));
        assert_eq!(sg.nnz_rows(), 2);
    }

    #[test]
    fn arena_slots_are_insertion_ordered_but_iter_is_sorted() {
        // Rows inserted out of order land in arbitrary arena slots; the
        // slot map must still hand them back by ascending row id.
        let mut sg = SparseGrad::new(2);
        sg.accumulate(7, &[7.0, 7.0]);
        sg.accumulate(2, &[2.0, 2.0]);
        sg.accumulate(7, &[1.0, 1.0]);
        let rows: Vec<(u32, Vec<f32>)> = sg.iter().map(|(i, g)| (i, g.to_vec())).collect();
        assert_eq!(rows, vec![(2, vec![2.0, 2.0]), (7, vec![8.0, 8.0])]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn accumulate_rejects_wrong_width() {
        let mut sg = SparseGrad::new(3);
        sg.accumulate(0, &[1.0]);
    }
}

/// Row-wise sparse Adagrad — the embedding optimizer the open-source DLRM
/// ships with: one accumulator *per row* (not per element), `s_r += mean(g_r²)`,
/// `row -= lr · g_r / (sqrt(s_r) + ε)`. Only touched rows pay any cost,
/// which is what makes it GPU-friendly in FAE's hot path.
#[derive(Clone, Debug)]
pub struct RowwiseAdagrad {
    /// Learning rate.
    pub lr: f32,
    /// Numerical-stability floor.
    pub eps: f32,
    accum: Vec<f32>,
}

impl RowwiseAdagrad {
    /// Creates state for a table with `rows` rows.
    pub fn new(lr: f32, rows: usize) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self { lr, eps: 1e-8, accum: vec![0.0; rows] }
    }

    /// Applies one sparse step to `table` for the rows in `grad`.
    pub fn step(&mut self, table: &mut crate::table::EmbeddingTable, grad: &SparseGrad) {
        assert_eq!(grad.dim(), table.dim(), "gradient width mismatch");
        for (idx, g) in grad.iter() {
            // 8-lane sum_squares reorders the f32 sum (DESIGN.md §14).
            let mean_sq: f32 = lanes::sum_squares(g) / g.len() as f32;
            let s = &mut self.accum[idx as usize];
            *s += mean_sq;
            let scale = self.lr / (s.sqrt() + self.eps);
            let row = table.weights_mut().row_mut(idx as usize);
            lanes::axpy(row, -scale, g);
        }
    }

    /// Accumulator value for one row (tests / inspection).
    pub fn accumulator(&self, row: u32) -> f32 {
        self.accum[row as usize]
    }
}

#[cfg(test)]
mod adagrad_tests {
    use super::*;
    use crate::table::EmbeddingTable;
    use fae_nn::Tensor;

    fn table_of_ones(rows: usize, dim: usize) -> EmbeddingTable {
        EmbeddingTable::from_weights(Tensor::full(rows, dim, 1.0))
    }

    #[test]
    fn only_touched_rows_change() {
        let mut t = table_of_ones(4, 2);
        let mut opt = RowwiseAdagrad::new(0.1, 4);
        let mut g = SparseGrad::new(2);
        g.accumulate(2, &[1.0, 1.0]);
        opt.step(&mut t, &g);
        assert_eq!(t.row(0), &[1.0, 1.0]);
        assert_ne!(t.row(2), &[1.0, 1.0]);
        assert_eq!(opt.accumulator(0), 0.0);
        assert!(opt.accumulator(2) > 0.0);
    }

    #[test]
    fn first_step_magnitude_is_lr_independent_of_grad_scale() {
        // Row-wise normalisation: first step ≈ lr in the gradient's
        // direction regardless of magnitude.
        for scale in [0.01f32, 1.0, 100.0] {
            let mut t = table_of_ones(1, 2);
            let mut opt = RowwiseAdagrad::new(0.1, 1);
            let mut g = SparseGrad::new(2);
            g.accumulate(0, &[scale, scale]);
            opt.step(&mut t, &g);
            let moved = 1.0 - t.row(0)[0];
            assert!((moved - 0.1).abs() < 1e-3, "scale {scale}: moved {moved}");
        }
    }

    #[test]
    fn repeated_updates_decay() {
        let mut t = table_of_ones(1, 2);
        let mut opt = RowwiseAdagrad::new(0.1, 1);
        let mut g = SparseGrad::new(2);
        g.accumulate(0, &[1.0, 1.0]);
        opt.step(&mut t, &g);
        let first = 1.0 - t.row(0)[0];
        let before = t.row(0)[0];
        opt.step(&mut t, &g);
        let second = before - t.row(0)[0];
        assert!(second < first);
    }
}
