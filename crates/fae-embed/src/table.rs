//! Dense embedding tables with bag lookups and sparse updates.
//!
//! A lookup batch is passed in CSR form: a flat `indices` array plus
//! `offsets` with `offsets[i]..offsets[i+1]` delimiting sample `i`'s
//! indices (PyTorch's `EmbeddingBag` convention, which DLRM/TBSM use with
//! sum pooling). DLRM performs exactly one lookup per table per sample;
//! TBSM's sequence features produce multi-index bags.

use fae_nn::Tensor;
use rand::Rng;

use crate::sparse::SparseGrad;

/// A `rows × dim` embedding table.
///
/// ```
/// use fae_embed::EmbeddingTable;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let table = EmbeddingTable::new(1_000, 16, &mut rng);
/// // Two samples: bag {3, 7} (sum-pooled) and bag {42}.
/// let out = table.lookup_bag(&[3, 7, 42], &[0, 2, 3]);
/// assert_eq!(out.shape(), (2, 16));
/// assert_eq!(table.size_bytes(), 1_000 * 16 * 4);
/// ```
#[derive(Clone)]
pub struct EmbeddingTable {
    weights: Tensor,
    dim: usize,
}

impl EmbeddingTable {
    /// Creates a table with DLRM's uniform `±1/sqrt(rows)` initialisation.
    pub fn new(rows: usize, dim: usize, rng: &mut impl Rng) -> Self {
        assert!(rows > 0 && dim > 0, "embedding table must be non-empty");
        let scale = 1.0 / (rows as f32).sqrt();
        Self { weights: fae_nn::init::uniform(rows, dim, scale, rng), dim }
    }

    /// Wraps an existing weight matrix.
    pub fn from_weights(weights: Tensor) -> Self {
        let dim = weights.cols();
        Self { weights, dim }
    }

    /// Number of rows (distinct categorical values).
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Size in bytes of the f32 weights — the unit of Fig 2 / Fig 6a.
    pub fn size_bytes(&self) -> usize {
        self.weights.len() * std::mem::size_of::<f32>()
    }

    /// Immutable weights.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable weights (parameter averaging in data-parallel training).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// One row of the table.
    pub fn row(&self, idx: u32) -> &[f32] {
        self.weights.row(idx as usize)
    }

    /// Overwrites one row (used by hot-bag write-back).
    pub fn set_row(&mut self, idx: u32, values: &[f32]) {
        self.weights.row_mut(idx as usize).copy_from_slice(values);
    }

    /// Sum-pooled bag lookup. `offsets` has `batch + 1` entries delimiting
    /// each sample's slice of `indices`.
    pub fn lookup_bag(&self, indices: &[u32], offsets: &[usize]) -> Tensor {
        assert!(!offsets.is_empty(), "offsets must contain batch+1 entries");
        assert_eq!(
            offsets.last().copied(),
            Some(indices.len()),
            "offsets must end at indices.len()"
        );
        let batch = offsets.len() - 1;
        let mut out = Tensor::zeros(batch, self.dim);
        for b in 0..batch {
            let dst = out.row_mut(b);
            for &idx in &indices[offsets[b]..offsets[b + 1]] {
                // Elementwise 8-wide add: same accumulation order as the
                // scalar loop it replaced (bag order is preserved).
                fae_nn::lanes::add_assign(dst, self.weights.row(idx as usize));
            }
        }
        out
    }

    /// Backward pass of [`Self::lookup_bag`]: scatters `grad_out`
    /// (`batch × dim`) onto the rows each sample touched, coalescing
    /// duplicates into a [`SparseGrad`].
    pub fn bag_backward(
        &self,
        indices: &[u32],
        offsets: &[usize],
        grad_out: &Tensor,
    ) -> SparseGrad {
        let batch = offsets.len() - 1;
        assert_eq!(grad_out.rows(), batch, "grad_out batch mismatch");
        assert_eq!(grad_out.cols(), self.dim, "grad_out dim mismatch");
        let mut sg = SparseGrad::new(self.dim);
        for b in 0..batch {
            let g = grad_out.row(b);
            for &idx in &indices[offsets[b]..offsets[b + 1]] {
                sg.accumulate(idx, g);
            }
        }
        sg
    }

    /// Sparse SGD update: `row -= lr * grad` for each touched row. The
    /// gradient is already coalesced (duplicates summed in the arena), so
    /// each touched row is read and written exactly once per step.
    pub fn sgd_step_sparse(&mut self, grad: &SparseGrad, lr: f32) {
        for (idx, g) in grad.iter() {
            fae_nn::lanes::axpy(self.weights.row_mut(idx as usize), -lr, g);
        }
    }
}

/// The hot rows of one table, extracted into a compact `hot_count × dim`
/// table indexed by *hot-local* ids. This is what the paper's embedding
/// replicator copies onto every GPU.
#[derive(Clone)]
pub struct HotEmbeddingBag {
    table: EmbeddingTable,
    /// hot-local id -> global row id (sorted ascending).
    global_ids: Vec<u32>,
}

impl HotEmbeddingBag {
    /// Extracts the given global rows (must be sorted, deduplicated) from
    /// `master` into a compact bag.
    pub fn extract(master: &EmbeddingTable, global_ids: Vec<u32>) -> Self {
        debug_assert!(
            global_ids.windows(2).all(|w| w[0] < w[1]),
            "global_ids must be sorted+unique"
        );
        let dim = master.dim();
        let mut weights = Tensor::zeros(global_ids.len().max(1), dim);
        for (local, &g) in global_ids.iter().enumerate() {
            weights.row_mut(local).copy_from_slice(master.row(g));
        }
        Self { table: EmbeddingTable::from_weights(weights), global_ids }
    }

    /// Number of hot rows.
    pub fn hot_rows(&self) -> usize {
        self.global_ids.len()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Size in bytes of the hot weights.
    pub fn size_bytes(&self) -> usize {
        self.global_ids.len() * self.dim() * std::mem::size_of::<f32>()
    }

    /// Global ids of the hot rows, sorted ascending.
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }

    /// Underlying compact table (hot-local indexing).
    pub fn table(&self) -> &EmbeddingTable {
        &self.table
    }

    /// Mutable compact table.
    pub fn table_mut(&mut self) -> &mut EmbeddingTable {
        &mut self.table
    }

    /// Copies every hot row back into `master` (the hot→cold transition
    /// sync of §III-C).
    pub fn write_back(&self, master: &mut EmbeddingTable) {
        for (local, &g) in self.global_ids.iter().enumerate() {
            master.set_row(g, self.table.row(local as u32));
        }
    }

    /// Refreshes every hot row from `master` (the cold→hot transition).
    pub fn refresh_from(&mut self, master: &EmbeddingTable) {
        for (local, &g) in self.global_ids.iter().enumerate() {
            self.table.set_row(local as u32, master.row(g));
        }
    }

    /// Bytes moved by one CPU↔GPU hot-row synchronisation.
    pub fn sync_bytes(&self) -> usize {
        self.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table_with(rows: usize, dim: usize, f: impl Fn(usize, usize) -> f32) -> EmbeddingTable {
        EmbeddingTable::from_weights(Tensor::from_fn(rows, dim, f))
    }

    #[test]
    fn lookup_single_index_per_sample() {
        let t = table_with(4, 2, |r, c| (r * 10 + c) as f32);
        let out = t.lookup_bag(&[2, 0, 3], &[0, 1, 2, 3]);
        assert_eq!(out.as_slice(), &[20.0, 21.0, 0.0, 1.0, 30.0, 31.0]);
    }

    #[test]
    fn lookup_sum_pools_multi_index_bags() {
        let t = table_with(4, 2, |r, _| r as f32);
        // Sample 0: rows {1, 2}; sample 1: empty bag; sample 2: row {3} twice.
        let out = t.lookup_bag(&[1, 2, 3, 3], &[0, 2, 2, 4]);
        assert_eq!(out.as_slice(), &[3.0, 3.0, 0.0, 0.0, 6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn lookup_rejects_bad_offsets() {
        let t = table_with(4, 2, |_, _| 0.0);
        let _ = t.lookup_bag(&[1, 2], &[0, 1]);
    }

    #[test]
    fn bag_backward_coalesces_duplicates() {
        let t = table_with(4, 2, |_, _| 0.0);
        let grad = Tensor::from_vec(2, 2, vec![1.0, 2.0, 10.0, 20.0]);
        // Both samples touch row 1; sample 1 also touches row 3.
        let sg = t.bag_backward(&[1, 1, 3], &[0, 1, 3], &grad);
        assert_eq!(sg.nnz_rows(), 2);
        let rows: Vec<_> = sg.iter().collect();
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[0].1, &[11.0, 22.0]);
        assert_eq!(rows[1].0, 3);
        assert_eq!(rows[1].1, &[10.0, 20.0]);
    }

    #[test]
    fn sparse_sgd_only_touches_listed_rows() {
        let mut t = table_with(3, 2, |_, _| 1.0);
        let mut sg = SparseGrad::new(2);
        sg.accumulate(1, &[2.0, 4.0]);
        t.sgd_step_sparse(&sg, 0.5);
        assert_eq!(t.row(0), &[1.0, 1.0]);
        assert_eq!(t.row(1), &[0.0, -1.0]);
        assert_eq!(t.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn lookup_then_update_gradient_descent_reduces_loss() {
        // Sanity: training an embedding row towards a target via the bag
        // path converges.
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = EmbeddingTable::new(8, 4, &mut rng);
        let target = [1.0f32, -1.0, 0.5, 0.0];
        for _ in 0..200 {
            let out = t.lookup_bag(&[5], &[0, 1]);
            let grad = Tensor::from_vec(
                1,
                4,
                out.row(0).iter().zip(&target).map(|(&o, &t)| 2.0 * (o - t)).collect(),
            );
            let sg = t.bag_backward(&[5], &[0, 1], &grad);
            t.sgd_step_sparse(&sg, 0.1);
        }
        for (v, tgt) in t.row(5).iter().zip(&target) {
            assert!((v - tgt).abs() < 1e-3);
        }
    }

    #[test]
    fn size_bytes_matches_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = EmbeddingTable::new(1000, 16, &mut rng);
        assert_eq!(t.size_bytes(), 1000 * 16 * 4);
    }

    #[test]
    fn hot_bag_extract_and_lookup_matches_master() {
        let master = table_with(10, 3, |r, c| (r * 100 + c) as f32);
        let bag = HotEmbeddingBag::extract(&master, vec![2, 5, 9]);
        assert_eq!(bag.hot_rows(), 3);
        assert_eq!(bag.size_bytes(), 3 * 3 * 4);
        assert_eq!(bag.table().row(0), master.row(2));
        assert_eq!(bag.table().row(1), master.row(5));
        assert_eq!(bag.table().row(2), master.row(9));
    }

    #[test]
    fn hot_bag_write_back_and_refresh_round_trip() {
        let mut master = table_with(6, 2, |r, _| r as f32);
        let mut bag = HotEmbeddingBag::extract(&master, vec![1, 4]);
        // Train the hot copy, then sync back.
        bag.table_mut().set_row(0, &[100.0, 100.0]);
        bag.write_back(&mut master);
        assert_eq!(master.row(1), &[100.0, 100.0]);
        assert_eq!(master.row(4), &[4.0, 4.0]); // untouched hot row preserved
                                                // Cold phase updates the master; refresh pulls it into the bag.
        master.set_row(4, &[-7.0, -7.0]);
        bag.refresh_from(&master);
        assert_eq!(bag.table().row(1), &[-7.0, -7.0]);
    }

    #[test]
    fn empty_hot_bag_is_valid() {
        let master = table_with(4, 2, |_, _| 0.0);
        let bag = HotEmbeddingBag::extract(&master, vec![]);
        assert_eq!(bag.hot_rows(), 0);
        assert_eq!(bag.size_bytes(), 0);
    }
}
