//! Proves fae-lint fails when it should: the seeded-violation fixture
//! tree must produce exactly the pinned diagnostics, and the suppressed/
//! exempt fixture must come back clean. CI additionally runs the binary
//! over the same trees and asserts the exit codes (see ci.yml).

use std::path::{Path, PathBuf};

use fae_lint::{lint_tree, FileClass};

const STRICT: FileClass =
    FileClass { deterministic: true, binary: false, net: false, metrics: false };
const NET: FileClass = FileClass { deterministic: false, binary: false, net: true, metrics: false };
const METRICS: FileClass =
    FileClass { deterministic: false, binary: false, net: false, metrics: true };

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

#[test]
fn seeded_violations_are_all_caught() {
    let diags = lint_tree(&fixture("violations"), STRICT).expect("fixture tree readable");
    let got: Vec<(String, usize, String)> = diags
        .iter()
        .map(|d| {
            let file = d.file.file_name().expect("file name").to_string_lossy().into_owned();
            (file, d.line, d.rule.clone())
        })
        .collect();
    let want: &[(&str, usize, &str)] = &[
        ("determinism.rs", 5, "hash-container"),
        ("determinism.rs", 6, "wall-clock"),
        ("determinism.rs", 8, "wall-clock"),
        ("determinism.rs", 10, "wall-clock"),
        ("determinism.rs", 15, "ambient-rng"),
        ("determinism.rs", 19, "hash-container"),
        ("determinism.rs", 21, "hash-container"),
        ("determinism.rs", 30, "timeline-phase"),
        ("float_fuse.rs", 5, "float-fuse"),
        ("float_fuse.rs", 11, "bad-pragma"),
        ("panics.rs", 5, "no-panic"),
        ("panics.rs", 10, "no-panic"),
        ("panics.rs", 15, "no-panic"),
        ("panics.rs", 20, "no-panic"),
        ("panics.rs", 25, "no-panic"),
        ("pragmas.rs", 5, "unused-pragma"),
        ("pragmas.rs", 10, "bad-pragma"),
        ("pragmas.rs", 15, "bad-pragma"),
        ("pragmas.rs", 16, "no-panic"),
    ];
    let want: Vec<(String, usize, String)> =
        want.iter().map(|(f, l, r)| (f.to_string(), *l, r.to_string())).collect();
    assert_eq!(got, want, "fixture diagnostics drifted");
}

#[test]
fn suppressed_and_exempt_code_is_clean() {
    let diags = lint_tree(&fixture("clean"), STRICT).expect("fixture tree readable");
    assert!(diags.is_empty(), "clean fixture reported: {diags:?}");
}

#[test]
fn every_diagnostic_renders_file_line_rule() {
    let diags = lint_tree(&fixture("violations"), STRICT).expect("fixture tree readable");
    assert!(!diags.is_empty());
    for d in &diags {
        let s = d.to_string();
        assert!(s.contains(&format!(":{}: [{}]", d.line, d.rule)), "bad rendering: {s}");
    }
}

#[test]
fn binary_classification_exempts_no_panic_only() {
    let bin = FileClass { deterministic: true, binary: true, net: false, metrics: false };
    let diags = lint_tree(&fixture("violations"), bin).expect("fixture tree readable");
    assert!(diags.iter().all(|d| d.rule != "no-panic"), "no-panic must not fire on binaries");
    assert!(
        diags.iter().any(|d| d.rule == "wall-clock"),
        "determinism rules must still fire on binaries"
    );
}

#[test]
fn net_fixture_catches_blocking_io() {
    let diags = lint_tree(&fixture("net"), NET).expect("fixture tree readable");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    let want: &[(usize, &str)] = &[
        (6, "net-deadline"),  // naked read_exact
        (10, "net-deadline"), // naked write_all
        (14, "net-deadline"), // read_to_end
        (18, "net-deadline"), // read_until
        (22, "net-deadline"), // bare TcpStream::connect
        (26, "net-deadline"), // set_read_timeout(None)
        (27, "net-deadline"), // set_write_timeout(None)
    ];
    let want: Vec<(usize, String)> = want.iter().map(|(l, r)| (*l, r.to_string())).collect();
    assert_eq!(got, want, "net fixture diagnostics drifted");
}

#[test]
fn net_fixture_is_silent_outside_the_net_scope() {
    // The same tree under a non-net classification must fire no
    // net-deadline diagnostics; the only residue is the now-pointless
    // pragma, which unused-pragma rightly calls out.
    let diags = lint_tree(&fixture("net"), STRICT).expect("fixture tree readable");
    assert!(diags.iter().all(|d| d.rule != "net-deadline"), "scope leak: {diags:?}");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    assert_eq!(got, vec![(37, "unused-pragma".to_string())], "unexpected residue");
}

#[test]
fn metrics_fixture_catches_loose_names() {
    let diags = lint_tree(&fixture("metrics"), METRICS).expect("fixture tree readable");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    let want: &[(usize, &str)] = &[
        (5, "metric-name"),  // uppercase
        (7, "metric-name"),  // spaces
        (9, "metric-name"),  // dashes
        (11, "metric-name"), // doubled separator
    ];
    let want: Vec<(usize, String)> = want.iter().map(|(l, r)| (*l, r.to_string())).collect();
    assert_eq!(got, want, "metrics fixture diagnostics drifted");
}

#[test]
fn metrics_fixture_is_silent_outside_the_metrics_scope() {
    // Under a non-metrics classification the only residue is the
    // now-pointless pragma, which unused-pragma rightly calls out.
    let diags = lint_tree(&fixture("metrics"), STRICT).expect("fixture tree readable");
    assert!(diags.iter().all(|d| d.rule != "metric-name"), "scope leak: {diags:?}");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    assert_eq!(got, vec![(17, "unused-pragma".to_string())], "unexpected residue");
}

#[test]
fn workspace_is_clean() {
    // The tentpole's end state: the real workspace carries zero
    // violations. Walk up from this crate to the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent);
    let root = root.expect("workspace root above crates/fae-lint");
    let diags = fae_lint::lint_workspace(root).expect("workspace walkable");
    assert!(diags.is_empty(), "workspace violations:\n{diags:#?}");
}
