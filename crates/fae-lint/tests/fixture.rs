//! Proves fae-lint fails when it should: the seeded-violation fixture
//! tree must produce exactly the pinned diagnostics, and the suppressed/
//! exempt fixture must come back clean. CI additionally runs the binary
//! over the same trees and asserts the exit codes (see ci.yml).

use std::path::{Path, PathBuf};

use fae_lint::{lint_tree, FileClass};

const STRICT: FileClass =
    FileClass { deterministic: true, binary: false, net: false, metrics: false };
const NET: FileClass = FileClass { deterministic: false, binary: false, net: true, metrics: false };
const METRICS: FileClass =
    FileClass { deterministic: false, binary: false, net: false, metrics: true };

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

#[test]
fn seeded_violations_are_all_caught() {
    let diags = lint_tree(&fixture("violations"), STRICT).expect("fixture tree readable");
    let got: Vec<(String, usize, String)> = diags
        .iter()
        .map(|d| {
            let file = d.file.file_name().expect("file name").to_string_lossy().into_owned();
            (file, d.line, d.rule.clone())
        })
        .collect();
    let want: &[(&str, usize, &str)] = &[
        // The flow-aware pass reports the *source line* of each flow
        // that escapes (10: Instant::now into a pub return; 15:
        // thread_rng into a pub return). `use` lines and the pure
        // construction/lookup of the HashMap in `tally` no longer fire
        // — returning a map is fine, iterating it would not be.
        ("determinism.rs", 10, "wall-clock"),
        ("determinism.rs", 15, "ambient-rng"),
        ("determinism.rs", 30, "timeline-phase"),
        ("float_fuse.rs", 5, "float-fuse"),
        ("float_fuse.rs", 11, "bad-pragma"),
        ("panics.rs", 5, "no-panic"),
        ("panics.rs", 10, "no-panic"),
        ("panics.rs", 15, "no-panic"),
        ("panics.rs", 20, "no-panic"),
        ("panics.rs", 25, "no-panic"),
        ("pragmas.rs", 5, "unused-pragma"),
        ("pragmas.rs", 10, "bad-pragma"),
        ("pragmas.rs", 15, "bad-pragma"),
        ("pragmas.rs", 16, "no-panic"),
    ];
    let want: Vec<(String, usize, String)> =
        want.iter().map(|(f, l, r)| (f.to_string(), *l, r.to_string())).collect();
    assert_eq!(got, want, "fixture diagnostics drifted");
}

#[test]
fn suppressed_and_exempt_code_is_clean() {
    let diags = lint_tree(&fixture("clean"), STRICT).expect("fixture tree readable");
    assert!(diags.is_empty(), "clean fixture reported: {diags:?}");
}

#[test]
fn every_diagnostic_renders_file_line_rule() {
    let diags = lint_tree(&fixture("violations"), STRICT).expect("fixture tree readable");
    assert!(!diags.is_empty());
    for d in &diags {
        let s = d.to_string();
        assert!(s.contains(&format!(":{}: [{}]", d.line, d.rule)), "bad rendering: {s}");
    }
}

#[test]
fn binary_classification_exempts_no_panic_only() {
    let bin = FileClass { deterministic: true, binary: true, net: false, metrics: false };
    let diags = lint_tree(&fixture("violations"), bin).expect("fixture tree readable");
    assert!(diags.iter().all(|d| d.rule != "no-panic"), "no-panic must not fire on binaries");
    assert!(
        diags.iter().any(|d| d.rule == "wall-clock"),
        "determinism rules must still fire on binaries"
    );
}

#[test]
fn net_fixture_catches_blocking_io() {
    let diags = lint_tree(&fixture("net"), NET).expect("fixture tree readable");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    let want: &[(usize, &str)] = &[
        (6, "net-deadline"),  // naked read_exact
        (10, "net-deadline"), // naked write_all
        (14, "net-deadline"), // read_to_end
        (18, "net-deadline"), // read_until
        (22, "net-deadline"), // bare TcpStream::connect
        (26, "net-deadline"), // set_read_timeout(None)
        (27, "net-deadline"), // set_write_timeout(None)
    ];
    let want: Vec<(usize, String)> = want.iter().map(|(l, r)| (*l, r.to_string())).collect();
    assert_eq!(got, want, "net fixture diagnostics drifted");
}

#[test]
fn net_fixture_is_silent_outside_the_net_scope() {
    // The same tree under a non-net classification must fire no
    // net-deadline diagnostics; the only residue is the now-pointless
    // pragma, which unused-pragma rightly calls out.
    let diags = lint_tree(&fixture("net"), STRICT).expect("fixture tree readable");
    assert!(diags.iter().all(|d| d.rule != "net-deadline"), "scope leak: {diags:?}");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    assert_eq!(got, vec![(37, "unused-pragma".to_string())], "unexpected residue");
}

#[test]
fn metrics_fixture_catches_loose_names() {
    let diags = lint_tree(&fixture("metrics"), METRICS).expect("fixture tree readable");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    let want: &[(usize, &str)] = &[
        (5, "metric-name"),  // uppercase
        (7, "metric-name"),  // spaces
        (9, "metric-name"),  // dashes
        (11, "metric-name"), // doubled separator
    ];
    let want: Vec<(usize, String)> = want.iter().map(|(l, r)| (*l, r.to_string())).collect();
    assert_eq!(got, want, "metrics fixture diagnostics drifted");
}

#[test]
fn metrics_fixture_is_silent_outside_the_metrics_scope() {
    // Under a non-metrics classification the only residue is the
    // now-pointless pragma, which unused-pragma rightly calls out.
    let diags = lint_tree(&fixture("metrics"), STRICT).expect("fixture tree readable");
    assert!(diags.iter().all(|d| d.rule != "metric-name"), "scope leak: {diags:?}");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    assert_eq!(got, vec![(17, "unused-pragma".to_string())], "unexpected residue");
}

#[test]
fn taint_fixture_pins() {
    let diags = lint_tree(&fixture("taint"), STRICT).expect("fixture tree readable");
    let got: Vec<(String, usize, String)> = diags
        .iter()
        .map(|d| {
            let file = d.file.file_name().expect("file name").to_string_lossy().into_owned();
            (file, d.line, d.rule.clone())
        })
        .collect();
    // clean.rs contributes nothing; every violations.rs finding lands
    // on the *source* line of the flow.
    let want: &[(&str, usize, &str)] = &[
        ("violations.rs", 9, "wall-clock"), // Instant::now into pub return
        ("violations.rs", 16, "hash-container"), // keys() collected, returned
        ("violations.rs", 22, "hash-container"), // ... via a renamed import
        ("violations.rs", 33, "ambient-rng"), // thread_rng into self.seed
        ("violations.rs", 38, "wall-clock"), // clock taints an if header
        ("violations.rs", 46, "wall-clock"), // source inside a private helper
        ("violations.rs", 55, "det-taint"), // pointer address escapes
    ];
    let want: Vec<(String, usize, String)> =
        want.iter().map(|(f, l, r)| (f.to_string(), *l, r.to_string())).collect();
    assert_eq!(got, want, "taint fixture diagnostics drifted");
}

#[test]
fn phase_fixture_pins() {
    let diags = lint_tree(&fixture("phases/bad"), STRICT).expect("fixture tree readable");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    let want: &[usize] = &[
        8,  // Drain missing from ALL (at the variant declaration)
        13, // ALL declares length 2, enum has 3
        16, // index maps Work outside 0..3
        25, // label match does not cover Drain
        35, // Timeline.seconds is [f64; 2]
        39, // Phase::Cooldown is not a declared variant
    ];
    let want: Vec<(usize, String)> =
        want.iter().map(|l| (*l, "phase-balance".to_string())).collect();
    assert_eq!(got, want, "phase fixture diagnostics drifted");

    let clean = lint_tree(&fixture("phases/clean"), STRICT).expect("fixture tree readable");
    assert!(clean.is_empty(), "clean phase fixture reported: {clean:?}");
}

#[test]
fn lock_fixture_pins() {
    let diags = lint_tree(&fixture("locks/bad"), STRICT).expect("fixture tree readable");
    let got: Vec<(usize, String)> = diags.iter().map(|d| (d.line, d.rule.clone())).collect();
    let want: &[usize] = &[
        13, // right acquired while holding left (cycle edge)
        19, // left acquired while holding right (cycle edge)
        25, // left re-acquired while held (self-deadlock)
    ];
    let want: Vec<(usize, String)> = want.iter().map(|l| (*l, "lock-order".to_string())).collect();
    assert_eq!(got, want, "lock fixture diagnostics drifted");

    let clean = lint_tree(&fixture("locks/clean"), STRICT).expect("fixture tree readable");
    assert!(clean.is_empty(), "clean lock fixture reported: {clean:?}");
}

#[test]
fn wire_fixture_pins() {
    // Pre-suppression pass output, so findings sharing a line stay
    // visible individually.
    let dir = fixture("wire/bad");
    let source = std::fs::read_to_string(dir.join("wire.rs")).expect("wire fixture readable");
    let design = std::fs::read_to_string(dir.join("design.md")).expect("design fixture readable");
    let wire = fae_lint::passes::PassFile { rel: PathBuf::from("wire.rs"), source, class: NET };
    let mut got: Vec<(usize, String)> = fae_lint::passes::wire_compat::run(&wire, &design)
        .into_iter()
        .map(|d| (d.line, d.message))
        .collect();
    got.sort();
    let want: &[(usize, &str)] = &[
        (6, "ranges `core` (0-4) and `aux` (4-6) overlap"),
        (6, "decode accepts undeclared tag 3"),
        (6, "tag 1 is shared by variants Data, Poll"),
        (8, "tag 1 encodes `Data` but decodes to `Poll`"),
        (10, "tag 7 (`Stats`) falls outside every declared wire-tags range"),
        (10, "never decoded"),
        (10, "missing from `name`"),
    ];
    assert_eq!(got.len(), want.len(), "wire fixture count drifted: {got:#?}");
    for ((gl, gm), (wl, wm)) in got.iter().zip(want) {
        assert_eq!(gl, wl, "wire finding moved: {gm}");
        assert!(gm.contains(wm), "wire finding drifted: got `{gm}`, want `{wm}`");
    }

    // The post-suppression entry point used by the CLI must fail on
    // the bad pair and accept the clean pair.
    let bad = fae_lint::lint_wire(&dir).expect("bad wire fixture readable");
    assert!(!bad.is_empty());
    assert!(bad.iter().all(|d| d.rule == "wire-compat"));
    let clean = fae_lint::lint_wire(&fixture("wire/clean")).expect("clean wire fixture readable");
    assert!(clean.is_empty(), "clean wire fixture reported: {clean:?}");
}

#[test]
fn flow_analysis_retires_legacy_lexical_pragmas() {
    // PR 5's mention-based matchers fired on every `HashMap` token, so
    // each of the converted lookup-only maps (trainer cost caches,
    // serve frequency table, overlap scheduler state) would have
    // needed a pragma. Count what the retired matchers would demand on
    // exactly those files — outside test regions — and require the
    // flow-aware lint to accept the same files pragma-free. That
    // difference is the "retires ≥5 pragmas" acceptance criterion.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent);
    let root = root.expect("workspace root above crates/fae-lint");
    let converted = [
        "crates/fae-core/src/trainer.rs",
        "crates/fae-serve/src/cache.rs",
        "crates/fae-sysmodel/src/overlap.rs",
    ];
    let mut legacy_hash_hits = 0usize;
    for rel in converted {
        let source = std::fs::read_to_string(root.join(rel)).expect("converted file readable");
        let scrubbed = fae_lint::scrub::scrub(&source);
        let regions = fae_lint::regions::test_regions(&scrubbed.text);
        let mut offset = 0usize;
        for line in scrubbed.text.lines() {
            let mut matches = Vec::new();
            fae_lint::rules::legacy_det_matches(line, &mut matches);
            legacy_hash_hits += matches
                .iter()
                .filter(|m| m.rule == "hash-container" && !regions.contains(offset + m.col))
                .count();
            offset += line.len() + 1;
        }

        let class = fae_lint::classify(Path::new(rel)).expect("converted file is linted");
        assert!(class.deterministic, "{rel} must be in the det scope for this to mean anything");
        let diags = fae_lint::lint_source(Path::new(rel), &source, class);
        assert!(
            diags.iter().all(|d| d.rule != "hash-container"),
            "flow-aware lint should accept the lookup-only maps in {rel}: {diags:?}"
        );
        assert!(
            !scrubbed.pragmas.iter().any(|p| p.rules.iter().any(|r| r == "hash-container")),
            "{rel} must need no hash-container pragmas under the flow-aware lint"
        );
    }
    assert!(
        legacy_hash_hits >= 5,
        "expected the legacy matchers to have demanded >= 5 suppressions, got {legacy_hash_hits}"
    );
}

#[test]
fn workspace_is_clean() {
    // The tentpole's end state: the real workspace carries zero
    // violations. Walk up from this crate to the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent);
    let root = root.expect("workspace root above crates/fae-lint");
    let diags = fae_lint::lint_workspace(root).expect("workspace walkable");
    assert!(diags.is_empty(), "workspace violations:\n{diags:#?}");
}
