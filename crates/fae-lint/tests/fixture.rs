//! Proves fae-lint fails when it should: the seeded-violation fixture
//! tree must produce exactly the pinned diagnostics, and the suppressed/
//! exempt fixture must come back clean. CI additionally runs the binary
//! over the same trees and asserts the exit codes (see ci.yml).

use std::path::{Path, PathBuf};

use fae_lint::{lint_tree, FileClass};

const STRICT: FileClass = FileClass { deterministic: true, binary: false };

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

#[test]
fn seeded_violations_are_all_caught() {
    let diags = lint_tree(&fixture("violations"), STRICT).expect("fixture tree readable");
    let got: Vec<(String, usize, String)> = diags
        .iter()
        .map(|d| {
            let file = d.file.file_name().expect("file name").to_string_lossy().into_owned();
            (file, d.line, d.rule.clone())
        })
        .collect();
    let want: &[(&str, usize, &str)] = &[
        ("determinism.rs", 5, "hash-container"),
        ("determinism.rs", 6, "wall-clock"),
        ("determinism.rs", 8, "wall-clock"),
        ("determinism.rs", 10, "wall-clock"),
        ("determinism.rs", 15, "ambient-rng"),
        ("determinism.rs", 19, "hash-container"),
        ("determinism.rs", 21, "hash-container"),
        ("determinism.rs", 30, "timeline-phase"),
        ("panics.rs", 5, "no-panic"),
        ("panics.rs", 10, "no-panic"),
        ("panics.rs", 15, "no-panic"),
        ("panics.rs", 20, "no-panic"),
        ("panics.rs", 25, "no-panic"),
        ("pragmas.rs", 5, "unused-pragma"),
        ("pragmas.rs", 10, "bad-pragma"),
        ("pragmas.rs", 15, "bad-pragma"),
        ("pragmas.rs", 16, "no-panic"),
    ];
    let want: Vec<(String, usize, String)> =
        want.iter().map(|(f, l, r)| (f.to_string(), *l, r.to_string())).collect();
    assert_eq!(got, want, "fixture diagnostics drifted");
}

#[test]
fn suppressed_and_exempt_code_is_clean() {
    let diags = lint_tree(&fixture("clean"), STRICT).expect("fixture tree readable");
    assert!(diags.is_empty(), "clean fixture reported: {diags:?}");
}

#[test]
fn every_diagnostic_renders_file_line_rule() {
    let diags = lint_tree(&fixture("violations"), STRICT).expect("fixture tree readable");
    assert!(!diags.is_empty());
    for d in &diags {
        let s = d.to_string();
        assert!(s.contains(&format!(":{}: [{}]", d.line, d.rule)), "bad rendering: {s}");
    }
}

#[test]
fn binary_classification_exempts_no_panic_only() {
    let bin = FileClass { deterministic: true, binary: true };
    let diags = lint_tree(&fixture("violations"), bin).expect("fixture tree readable");
    assert!(diags.iter().all(|d| d.rule != "no-panic"), "no-panic must not fire on binaries");
    assert!(
        diags.iter().any(|d| d.rule == "wall-clock"),
        "determinism rules must still fire on binaries"
    );
}

#[test]
fn workspace_is_clean() {
    // The tentpole's end state: the real workspace carries zero
    // violations. Walk up from this crate to the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent);
    let root = root.expect("workspace root above crates/fae-lint");
    let diags = fae_lint::lint_workspace(root).expect("workspace walkable");
    assert!(diags.is_empty(), "workspace violations:\n{diags:#?}");
}
