//! Property test pinning the agreement between the raw-source tokenizer
//! (`fae_lint::tokens`) and the scrubber (`fae_lint::scrub`).
//!
//! The two modules re-implement the same comment/string/char/lifetime
//! scanning rules independently — the scrubber blanks what the
//! tokenizer skips. If they ever drift (say, one treats `'a'` inside a
//! generic as a char literal and the other as a lifetime), the flow
//! passes and the lexical rules would disagree about where code is.
//! The properties below make that drift a test failure on arbitrary
//! interleavings of the tricky fragments.

use proptest::prelude::*;

use fae_lint::scrub::scrub;
use fae_lint::tokens::{tokenize, TokKind};

/// Source fragments chosen to stress every scanner rule: nested block
/// comments, escapes inside strings, raw-string hash counts, byte
/// strings, char-vs-lifetime ticks, and comment markers nested inside
/// literals (and vice versa).
const FRAGMENTS: &[&str] = &[
    "fn f() { g(); }",
    "let x = 1;",
    "0x1f ",
    "1.5e3 ",
    "ident_2 ",
    "// line comment\n",
    "/// doc comment\n",
    "//! inner doc\n",
    "// fae-lint: allow(no-panic, reason = \"test\")\n",
    "/* block */",
    "/* nested /* deeper */ still out */",
    "/* unterminated-newline \n */",
    "\"plain string\"",
    "\"has // not a comment\"",
    "\"has /* not a comment\"",
    "\"escaped \\\" quote\"",
    "\"trailing backslash \\\\\"",
    "b\"byte string\"",
    "r\"raw string\"",
    "r#\"raw with \" inside\"#",
    "r##\"raw with \"# inside\"##",
    "'a'",
    "'\\n'",
    "'\\''",
    "'x' ",
    "'static ",
    "'a, 'b>",
    "<'a>",
    "\n",
    "\n\n",
    "  \t ",
    "x.y::z",
    "=> -> ..",
];

/// Picks one fragment (the vendored proptest shim has no `prop_oneof`,
/// so this indexes the table instead).
fn fragment() -> impl Strategy<Value = &'static str> {
    (0usize..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i])
}

/// A token is a literal (its body is blanked by the scrubber) or code
/// (it must survive scrubbing byte-for-byte).
fn is_literal(kind: TokKind) -> bool {
    matches!(kind, TokKind::Str | TokKind::RawStr | TokKind::Char)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tokenizer_and_scrubber_agree(frags in prop::collection::vec(fragment(), 0..40)) {
        let source: String = frags.concat();
        let scrubbed = scrub(&source);
        let toks = tokenize(&source);

        // Scrubbing never changes length — offsets are shared currency.
        prop_assert_eq!(scrubbed.text.len(), source.len());

        let src = source.as_bytes();
        let blanked = scrubbed.text.as_bytes();
        let mut covered = vec![false; src.len()];

        for t in &toks {
            prop_assert!(t.start < t.end && t.end <= src.len());
            covered[t.start..t.end].fill(true);

            // Line agreement: the token's line number equals the newline
            // count of the scrubbed prefix plus one (scrub keeps every
            // newline, so the source prefix gives the same count).
            let line = 1 + blanked[..t.start].iter().filter(|&&b| b == b'\n').count();
            prop_assert_eq!(t.line, line, "token at byte {} line mismatch", t.start);

            // Column agreement, via the shared byte offsets: the distance
            // to the previous newline is identical in both views.
            let col_src = t.start - src[..t.start].iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            let col_scrub = t.start - blanked[..t.start].iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            prop_assert_eq!(col_src, col_scrub);

            if is_literal(t.kind) {
                // The scrubber must have blanked this span's body: any
                // byte it kept must match the source (delimiters), and
                // at least the interior must not leak comment markers.
                for i in t.start..t.end {
                    prop_assert!(
                        blanked[i] == src[i] || blanked[i] == b' ' || blanked[i] == b'\n',
                        "scrub rewrote byte {} inside a literal", i
                    );
                }
            } else {
                // Code tokens survive scrubbing byte-for-byte. If the
                // scrubber thought this span was comment or literal body
                // it would be spaces here, and this fails.
                prop_assert_eq!(
                    &scrubbed.text[t.start..t.end],
                    &source[t.start..t.end],
                    "scrub blanked a code token at byte {}", t.start
                );
            }
        }

        // Converse: every byte the scrubber kept as code is inside some
        // token (the tokenizer skipped nothing the scrubber kept).
        for i in 0..src.len() {
            let b = blanked[i];
            if b != b' ' && b != b'\n' && !b.is_ascii_whitespace() {
                prop_assert!(covered[i], "scrub kept byte {} ({:?}) but no token covers it", i, b as char);
            }
        }
    }

    /// The scrubber's pragma line numbers agree with the tokenizer's
    /// line accounting: a pragma reported on line N means no token that
    /// starts on line N precedes it in the comment (pragmas live in
    /// comments, which tokens skip entirely).
    #[test]
    fn pragma_lines_are_real_lines(frags in prop::collection::vec(fragment(), 0..30)) {
        let source: String = frags.concat();
        let scrubbed = scrub(&source);
        let total_lines = 1 + source.bytes().filter(|&b| b == b'\n').count();
        for p in &scrubbed.pragmas {
            prop_assert!(p.line >= 1 && p.line <= total_lines);
        }
    }
}
