//! CLI for the workspace invariant checker.
//!
//! ```text
//! fae-lint                      lint the workspace (root auto-detected)
//! fae-lint --root DIR           lint the workspace rooted at DIR
//! fae-lint --tree DIR [--det] [--lib] [--net] [--metrics]
//!                               lint a bare directory of .rs files with a
//!                               fixed classification (fixture testing)
//! fae-lint --list-rules         print the rule table
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fae_lint::{lint_tree, lint_workspace, FileClass, DET_CRATES, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fae-lint [--root DIR] [--tree DIR [--det] [--lib] [--net] [--metrics]] [--list-rules]\n\
         see DESIGN.md §11 for the rule table and pragma syntax"
    );
    ExitCode::from(2)
}

/// Finds the workspace root: the nearest ancestor of `start` holding a
/// `Cargo.toml` with a `crates/` directory beside it.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut tree: Option<PathBuf> = None;
    let mut det = false;
    let mut lib = false;
    let mut net = false;
    let mut metrics = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" | "--tree" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                if args[i] == "--root" {
                    root = Some(PathBuf::from(value));
                } else {
                    tree = Some(PathBuf::from(value));
                }
                i += 2;
            }
            "--det" => {
                det = true;
                i += 1;
            }
            "--lib" => {
                lib = true;
                i += 1;
            }
            "--net" => {
                net = true;
                i += 1;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            "--list-rules" => {
                println!("determinism-critical crates: {}", DET_CRATES.join(", "));
                for r in RULES {
                    println!("{:16} {:?}: {}", r.id, r.scope, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let result = if let Some(dir) = tree {
        lint_tree(&dir, FileClass { deterministic: det, binary: !lib, net, metrics })
    } else {
        let root = match root {
            Some(r) => r,
            None => {
                let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
                match find_root(&cwd) {
                    Some(r) => r,
                    None => {
                        eprintln!("fae-lint: no workspace root found above {}", cwd.display());
                        return ExitCode::from(2);
                    }
                }
            }
        };
        lint_workspace(&root)
    };

    match result {
        Ok(diags) if diags.is_empty() => {
            println!("fae-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!("fae-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fae-lint: {e}");
            ExitCode::from(2)
        }
    }
}
