//! CLI for the workspace invariant checker.
//!
//! ```text
//! fae-lint                      lint the workspace (root auto-detected)
//! fae-lint --root DIR           lint the workspace rooted at DIR
//! fae-lint --tree DIR [--det] [--lib] [--net] [--metrics]
//!                               lint a bare directory of .rs files with a
//!                               fixed classification (fixture testing);
//!                               phase-balance and lock-order run too
//! fae-lint --wire DIR           run wire-compat on DIR/wire.rs against
//!                               DIR/design.md (fixture testing)
//! fae-lint --format json        machine-readable diagnostics (an array
//!                               of {file, line, rule, message} records)
//! fae-lint --list-rules         print the rule table
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
//!
//! Text output ends with a per-crate summary table so CI logs show at a
//! glance which crate regressed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fae_lint::{lint_tree, lint_wire, lint_workspace, Diagnostic, FileClass, DET_CRATES, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fae-lint [--root DIR] [--tree DIR [--det] [--lib] [--net] [--metrics]]\n\
         \u{20}               [--wire DIR] [--format text|json] [--list-rules]\n\
         see DESIGN.md §11 for the rule table and pragma syntax"
    );
    ExitCode::from(2)
}

/// Finds the workspace root: the nearest ancestor of `start` holding a
/// `Cargo.toml` with a `crates/` directory beside it.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One `{file, line, rule, message}` record per diagnostic.
fn print_json(diags: &[Diagnostic]) {
    println!("[");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 == diags.len() { "" } else { "," };
        println!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}",
            json_escape(&d.file.display().to_string()),
            d.line,
            json_escape(&d.rule),
            json_escape(&d.message),
        );
    }
    println!("]");
}

/// The crate a workspace-relative diagnostic path belongs to.
fn crate_of(file: &Path) -> String {
    let mut comps = file.components().map(|c| c.as_os_str().to_string_lossy().into_owned());
    match comps.next().as_deref() {
        Some("crates") => comps.next().unwrap_or_else(|| "?".to_string()),
        Some("src") => "fae (root)".to_string(),
        _ => file.display().to_string(),
    }
}

/// Per-crate violation counts, one row per crate with findings.
fn print_summary(diags: &[Diagnostic]) {
    let mut per_crate: BTreeMap<String, BTreeMap<&str, usize>> = BTreeMap::new();
    for d in diags {
        *per_crate.entry(crate_of(&d.file)).or_default().entry(d.rule.as_str()).or_insert(0) += 1;
    }
    let width = per_crate.keys().map(|k| k.len()).max().unwrap_or(5).max(5);
    eprintln!();
    eprintln!("{:width$}  violations", "crate");
    for (krate, rules) in &per_crate {
        let total: usize = rules.values().sum();
        let breakdown: Vec<String> = rules.iter().map(|(rule, n)| format!("{rule} x{n}")).collect();
        eprintln!("{krate:width$}  {total:>4}  ({})", breakdown.join(", "));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut tree: Option<PathBuf> = None;
    let mut wire: Option<PathBuf> = None;
    let mut det = false;
    let mut lib = false;
    let mut net = false;
    let mut metrics = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" | "--tree" | "--wire" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                match args[i].as_str() {
                    "--root" => root = Some(PathBuf::from(value)),
                    "--tree" => tree = Some(PathBuf::from(value)),
                    _ => wire = Some(PathBuf::from(value)),
                }
                i += 2;
            }
            "--format" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                match value.as_str() {
                    "json" => json = true,
                    "text" => json = false,
                    _ => return usage(),
                }
                i += 2;
            }
            "--det" => {
                det = true;
                i += 1;
            }
            "--lib" => {
                lib = true;
                i += 1;
            }
            "--net" => {
                net = true;
                i += 1;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            "--list-rules" => {
                println!("determinism-critical crates: {}", DET_CRATES.join(", "));
                for r in RULES {
                    println!("{:16} {:?}: {}", r.id, r.scope, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let workspace_run = tree.is_none() && wire.is_none();
    let result = if let Some(dir) = wire {
        lint_wire(&dir)
    } else if let Some(dir) = tree {
        lint_tree(&dir, FileClass { deterministic: det, binary: !lib, net, metrics })
    } else {
        let root = match root {
            Some(r) => r,
            None => {
                let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
                match find_root(&cwd) {
                    Some(r) => r,
                    None => {
                        eprintln!("fae-lint: no workspace root found above {}", cwd.display());
                        return ExitCode::from(2);
                    }
                }
            }
        };
        lint_workspace(&root)
    };

    match result {
        Ok(diags) if diags.is_empty() => {
            if json {
                print_json(&diags);
            } else {
                println!("fae-lint: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            if json {
                print_json(&diags);
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if workspace_run {
                    print_summary(&diags);
                }
            }
            eprintln!("fae-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fae-lint: {e}");
            ExitCode::from(2)
        }
    }
}
