//! Test-region detection: byte ranges of the scrubbed source that are
//! compiled only under `cfg(test)` (or are `#[test]` functions), and are
//! therefore exempt from every lint rule.
//!
//! Works on scrubbed text (see [`crate::scrub`]) so braces and brackets
//! inside strings and comments cannot confuse the matcher.

/// Half-open byte ranges `[start, end)` of test-only code.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// True when byte offset `pos` lies inside a test-only region.
    pub fn contains(&self, pos: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| pos >= s && pos < e)
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `attr` (the text between `#[` and `]`) gates on `cfg(test)`.
fn is_test_gate(attr: &str) -> bool {
    let attr = attr.trim();
    if attr == "test" {
        return true;
    }
    if !attr.starts_with("cfg") {
        return false;
    }
    // Any cfg predicate that mentions the `test` configuration option:
    // cfg(test), cfg(all(test, ...)), cfg(any(test, ...)), ...
    let bytes = attr.as_bytes();
    let mut i = 0;
    while let Some(off) = attr[i..].find("test") {
        let at = i + off;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = bytes.get(at + 4).copied().unwrap_or(b' ');
        if before_ok && !is_ident(after) {
            return true;
        }
        i = at + 4;
    }
    false
}

/// Finds the byte ranges of test-only items in scrubbed source text.
pub fn test_regions(scrubbed: &str) -> TestRegions {
    let src = scrubbed.as_bytes();
    let mut regions = TestRegions::default();
    let mut i = 0usize;
    while i + 1 < src.len() {
        if !(src[i] == b'#' && src[i + 1] == b'[') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching(src, i + 1, b'[', b']') else { break };
        let attr = &scrubbed[i + 2..attr_end];
        i = attr_end + 1;
        if !is_test_gate(attr) {
            continue;
        }
        // Skip trailing attributes, then find the item's body: either a
        // brace block (fn/mod/impl) or a `;` (e.g. `mod tests;`).
        let mut j = i;
        loop {
            while j < src.len() && src[j].is_ascii_whitespace() {
                j += 1;
            }
            if j + 1 < src.len() && src[j] == b'#' && src[j + 1] == b'[' {
                match matching(src, j + 1, b'[', b']') {
                    Some(e) => j = e + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        let mut end = None;
        while j < src.len() {
            match src[j] {
                b'{' => {
                    end = matching(src, j, b'{', b'}');
                    break;
                }
                b';' => {
                    end = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        if let Some(e) = end {
            regions.ranges.push((attr_start, e + 1));
            i = e + 1;
        }
    }
    regions
}

/// Byte offset of the delimiter matching the opener at `open_at`.
fn matching(src: &[u8], open_at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in src.iter().enumerate().skip(open_at) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap() }\n}\nfn c() {}";
        let r = test_regions(src);
        let unwrap_at = src.find("unwrap").unwrap_or(0);
        assert!(r.contains(unwrap_at));
        assert!(!r.contains(0));
        let c_at = src.rfind("fn c").unwrap_or(0);
        assert!(!r.contains(c_at));
    }

    #[test]
    fn test_fn_with_extra_attrs() {
        let src = "#[test]\n#[should_panic]\nfn t() { boom() }\nfn live() {}";
        let r = test_regions(src);
        assert!(r.contains(src.find("boom").unwrap_or(0)));
        assert!(!r.contains(src.find("live").unwrap_or(0)));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, unix))]\nmod m { bad() }";
        assert!(test_regions(src).contains(src.find("bad").unwrap_or(0)));
    }

    #[test]
    fn cfg_testing_feature_does_not_count() {
        // `testing` contains `test` as a substring but is a different option.
        let src = "#[cfg(feature = x)]\nmod m { fine() }";
        assert!(!test_regions(src).contains(src.find("fine").unwrap_or(0)));
    }
}
