//! A minimal Rust tokenizer over *raw* source text.
//!
//! The lexical rules work on [`crate::scrub`]'s blanked text; the flow
//! passes need real tokens with byte spans and line numbers. The two
//! must agree on what is code and what is comment/literal — this
//! tokenizer re-implements the same comment/string/char/lifetime
//! scanning rules as `scrub.rs`, and a proptest
//! (`tests/token_scrub.rs`) pins the agreement: every token's span
//! survives scrubbing byte-for-byte, and the token's line number equals
//! the newline count of the scrubbed prefix plus one.
//!
//! Deliberately *not* a full lexer: multi-byte operators (`::`, `=>`,
//! `->`, `..`) come out as adjacent single-byte [`TokKind::Punct`]
//! tokens, which the tree/flow layers reassemble by adjacency where it
//! matters. That keeps the scanner small enough to audit by eye.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `self`, ...).
    Ident,
    /// Numeric literal (integers, floats, prefixed forms).
    Num,
    /// String literal, including the quotes (`"..."`, `b"..."` body).
    Str,
    /// Raw string literal, including `r`/hashes/quotes.
    RawStr,
    /// Char literal, including the quotes.
    Char,
    /// Lifetime (`'a`) — the tick plus the identifier.
    Lifetime,
    /// Any other single byte of punctuation.
    Punct,
}

/// One token: kind plus its byte span and 1-based line number.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// What it is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// The token's text within `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// If `rest` begins a raw-string opener (`#*"`), returns the hash count.
/// Mirrors `scrub::raw_string_hashes` exactly.
fn raw_string_hashes(rest: &[u8]) -> Option<usize> {
    let mut n = 0;
    while n < rest.len() && rest[n] == b'#' {
        n += 1;
    }
    if rest.get(n) == Some(&b'"') {
        Some(n)
    } else {
        None
    }
}

/// Tokenizes `source`, skipping whitespace and comments.
///
/// Same scanning decisions as the scrubber: line comments run to the
/// newline, block comments nest, ordinary strings honour `\` escapes,
/// raw strings honour their hash count, and a `'` is a char literal
/// (bounded at 12 bytes, like scrub) when the scrubber would treat it
/// as one, a lifetime otherwise.
pub fn tokenize(source: &str) -> Vec<Tok> {
    let src = source.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < src.len() {
        let b = src[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let prev_ident = i > 0 && is_ident(src[i - 1]);
        if b == b'/' && i + 1 < src.len() && src[i + 1] == b'/' {
            while i < src.len() && src[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if b == b'/' && i + 1 < src.len() && src[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < src.len() {
                if src[i] == b'/' && i + 1 < src.len() && src[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if src[i] == b'*' && i + 1 < src.len() && src[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if src[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        if b == b'"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < src.len() {
                if src[i] == b'\\' && i + 1 < src.len() {
                    if src[i] == b'\n' || src[i + 1] == b'\n' {
                        line += 1;
                    }
                    i += 2;
                } else if src[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    if src[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Tok { kind: TokKind::Str, start, end: i, line: start_line });
            continue;
        }
        if b == b'r' && !prev_ident {
            if let Some(hashes) = raw_string_hashes(&src[i + 1..]) {
                let start = i;
                let start_line = line;
                i += 1 + hashes + 1; // r, hashes, opening quote
                while i < src.len() {
                    if src[i] == b'"' && src[i + 1..].iter().take(hashes).all(|&c| c == b'#') {
                        i += 1 + hashes.min(src.len() - i - 1);
                        break;
                    }
                    if src[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::RawStr, start, end: i, line: start_line });
                continue;
            }
        }
        if b == b'\'' {
            // Char literal vs lifetime: the exact test scrub.rs uses.
            let next = src.get(i + 1).copied().unwrap_or(0);
            let after = src.get(i + 2).copied().unwrap_or(0);
            if next == b'\\' || (!is_ident(next) && next != b'\'') || after == b'\'' {
                let start = i;
                let start_line = line;
                i += 1;
                let mut n = 0;
                while i < src.len() && n < 12 {
                    if src[i] == b'\\' && i + 1 < src.len() {
                        i += 2;
                        n += 2;
                    } else if src[i] == b'\'' {
                        i += 1;
                        break;
                    } else {
                        if src[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                        n += 1;
                    }
                }
                toks.push(Tok { kind: TokKind::Char, start, end: i, line: start_line });
            } else {
                // Lifetime: tick plus identifier run.
                let start = i;
                i += 1;
                while i < src.len() && is_ident(src[i]) {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Lifetime, start, end: i, line });
            }
            continue;
        }
        if is_ident_start(b) {
            let start = i;
            while i < src.len() && is_ident(src[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, start, end: i, line });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < src.len() && (is_ident(src[i]) || src[i] == b'.') {
                // `0..n` is a range, not a float: stop before `..`.
                if src[i] == b'.'
                    && (src.get(i + 1) == Some(&b'.')
                        || !src.get(i + 1).copied().unwrap_or(b' ').is_ascii_digit())
                {
                    break;
                }
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Num, start, end: i, line });
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct, start: i, end: i + 1, line });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let got = kinds("let x = 42;");
        assert_eq!(got[0], (TokKind::Ident, "let".into()));
        assert_eq!(got[1], (TokKind::Ident, "x".into()));
        assert_eq!(got[2], (TokKind::Punct, "=".into()));
        assert_eq!(got[3], (TokKind::Num, "42".into()));
        assert_eq!(got[4], (TokKind::Punct, ";".into()));
    }

    #[test]
    fn comments_vanish_and_lines_advance() {
        let src = "a // HashMap\n/* b\nc */ d";
        let t = tokenize(src);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].text(src), "a");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].text(src), "d");
        assert_eq!(t[1].line, 3);
    }

    #[test]
    fn strings_are_single_tokens() {
        let src = "f(\"a b\", r#\"c \" d\"#, 'x', '\\n')";
        let t = tokenize(src);
        let texts: Vec<_> = t.iter().map(|t| t.text(src)).collect();
        assert!(texts.contains(&"\"a b\""));
        assert!(texts.contains(&"r#\"c \" d\"#"));
        assert!(texts.contains(&"'x'"));
        assert!(texts.contains(&"'\\n'"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; }";
        let t = tokenize(src);
        let lifes: Vec<_> =
            t.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text(src)).collect();
        assert_eq!(lifes, vec!["'a", "'a"]);
        assert!(t.iter().any(|t| t.kind == TokKind::Char && t.text(src) == "'y'"));
    }

    #[test]
    fn floats_and_ranges() {
        let src = "a(1.5, 0..8, x.0)";
        let t = tokenize(src);
        let nums: Vec<_> =
            t.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text(src)).collect();
        assert_eq!(nums, vec!["1.5", "0", "8", "0"]);
    }

    #[test]
    fn raw_ident_prefix_is_not_a_raw_string() {
        // `prev_ident` guard: `for r in ..` must not treat `r` + later
        // quote as a raw-string opener.
        let src = "for r in v { g(r, \"s\") }";
        let t = tokenize(src);
        assert!(t.iter().any(|t| t.kind == TokKind::Str && t.text(src) == "\"s\""));
    }
}
