//! The lint rules: what is forbidden where, and the lexical matchers
//! that find violations in scrubbed source text.
//!
//! These are lexical approximations, not type-checked analyses — the
//! trade-off is zero dependencies and sub-second whole-workspace runs.
//! Known gaps are documented per rule and in DESIGN.md §11.

/// Where a rule applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Only the determinism-critical crates (fae-core, fae-embed,
    /// fae-models, fae-serve, fae-sysmodel).
    Deterministic,
    /// Library code of every first-party crate (binary targets exempt:
    /// a panic there aborts one CLI invocation, not a library contract).
    AllLibs,
    /// Only the networking crate (fae-net): socket I/O must never block
    /// without a deadline.
    Net,
    /// Every first-party crate except fae-lint itself (whose matchers
    /// quote the trigger tokens): telemetry emission sites must name
    /// their metric with a stable lowercase dotted literal, so the
    /// Prometheus exposition's `fae_*` name mapping stays collision-free.
    Metrics,
}

/// Static description of one rule.
pub struct RuleInfo {
    /// Stable kebab-case id, used in pragmas and diagnostics.
    pub id: &'static str,
    /// Where it applies.
    pub scope: Scope,
    /// One-line description for `--list-rules` and docs.
    pub summary: &'static str,
}

/// Every enforced rule, in documentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        scope: Scope::Deterministic,
        summary: "a host-clock read (Instant/SystemTime) flows into digest-affecting state",
    },
    RuleInfo {
        id: "ambient-rng",
        scope: Scope::Deterministic,
        summary: "ambient randomness (thread_rng/OsRng/...) flows into digest-affecting state",
    },
    RuleInfo {
        id: "hash-container",
        scope: Scope::Deterministic,
        summary: "HashMap/HashSet *iteration* flows into digest-affecting state (lookups are fine)",
    },
    RuleInfo {
        id: "det-taint",
        scope: Scope::Deterministic,
        summary: "another nondeterministic source (thread id, pointer address) flows into \
                  digest-affecting state",
    },
    RuleInfo {
        id: "phase-balance",
        scope: Scope::Deterministic,
        summary: "Phase enum / Phase::ALL / index() / phase arrays / charge sites must agree, \
                  so the journal's phase-sum invariant holds statically",
    },
    RuleInfo {
        id: "lock-order",
        scope: Scope::AllLibs,
        summary: "lock acquisitions must follow one global order; cycles and same-class \
                  re-acquisition are deadlocks-in-waiting",
    },
    RuleInfo {
        id: "wire-compat",
        scope: Scope::Net,
        summary: "fae-net wire tags must be unique, encode/decode-consistent, and inside the \
                  ranges DESIGN.md §12 declares",
    },
    RuleInfo {
        id: "no-panic",
        scope: Scope::AllLibs,
        summary: "unwrap/expect/panic!/string-key indexing forbidden in library code",
    },
    RuleInfo {
        id: "timeline-phase",
        scope: Scope::Deterministic,
        summary: "Timeline charges must name a Phase constant (or a `phase` binding)",
    },
    RuleInfo {
        id: "net-deadline",
        scope: Scope::Net,
        summary: "blocking socket I/O (read_exact/write_all/connect/...) must carry a deadline",
    },
    RuleInfo {
        id: "metric-name",
        scope: Scope::Metrics,
        summary: "metric names at emission sites must be lowercase dotted literals ([a-z0-9._])",
    },
    RuleInfo {
        id: "float-fuse",
        scope: Scope::AllLibs,
        summary: "8-lane f32 unrolls (chunks_exact(8)) must pragma their bit-identity \
                  contract, citing DESIGN.md §14",
    },
];

/// True if `id` names a suppressible rule (pragma target).
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One rule match inside a single line.
pub struct Match {
    /// Byte column (0-based) within the line.
    pub col: usize,
    /// Rule id that fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte positions of `needle` in `hay` with identifier boundaries on
/// both sides (so `Instant` does not match `InstantLike`).
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = hay[from..].find(needle) {
        let at = from + off;
        // A needle starting/ending in a non-ident byte (`.`, `(`, `!`…)
        // has that boundary built in.
        let needle_start_ident = needle.as_bytes().first().is_some_and(|&b| is_ident(b));
        let needle_end_ident = needle.as_bytes().last().is_some_and(|&b| is_ident(b));
        let before_ok = !needle_start_ident || at == 0 || !is_ident(hb[at - 1]);
        let after = hb.get(at + needle.len()).copied().unwrap_or(b' ');
        if before_ok && (!needle_end_ident || !is_ident(after)) {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Runs the lexical determinism rules over one scrubbed line.
///
/// Since the flow-aware analyzer landed, the only *lexical* determinism
/// rule left is `timeline-phase` (a purely local shape check). The old
/// mention-based wall-clock/ambient-rng/hash-container matchers were
/// retired in favour of the taint pass ([`crate::flow`]), which flags
/// flows into digest-affecting state instead of every mention; the v1
/// matchers survive as [`legacy_det_matches`] so tests can demonstrate
/// how many pragmas the upgrade retired.
pub fn deterministic_matches(line: &str, out: &mut Vec<Match>) {
    timeline_matches(line, out);
}

/// The retired PR-5 lexical matchers: every *mention* of a wall-clock
/// type, ambient-RNG constructor or hash container fired, forcing a
/// pragma on each innocent lookup table. Kept (not wired into any lint
/// path) so the pragma-retirement test can count how many suppressions
/// the flow-aware pass made unnecessary.
pub fn legacy_det_matches(line: &str, out: &mut Vec<Match>) {
    for tok in ["Instant", "SystemTime"] {
        for col in token_positions(line, tok) {
            out.push(Match {
                col,
                rule: "wall-clock",
                message: format!("`{tok}` mentioned (legacy lexical rule)"),
            });
        }
    }
    for tok in ["thread_rng", "from_entropy", "OsRng", "rand::random"] {
        for col in token_positions(line, tok) {
            out.push(Match {
                col,
                rule: "ambient-rng",
                message: format!("`{tok}` mentioned (legacy lexical rule)"),
            });
        }
    }
    for tok in ["HashMap", "HashSet"] {
        for col in token_positions(line, tok) {
            out.push(Match {
                col,
                rule: "hash-container",
                message: format!("`{tok}` mentioned (legacy lexical rule)"),
            });
        }
    }
}

/// Runs the no-panic rule over one scrubbed line.
pub fn no_panic_matches(line: &str, out: &mut Vec<Match>) {
    for (tok, what) in [
        (".unwrap()", "`.unwrap()` panics on the error path"),
        (".expect(", "`.expect(...)` panics on the error path"),
        ("panic!", "`panic!` in library code"),
        ("unreachable!", "`unreachable!` in library code"),
        ("todo!", "`todo!` in library code"),
        ("unimplemented!", "`unimplemented!` in library code"),
    ] {
        for col in token_positions(line, tok) {
            out.push(Match {
                col,
                rule: "no-panic",
                message: format!("{what}; return a typed error (or pragma with a proof)"),
            });
        }
    }
    // Indexing a map with a string-literal key: `m["k"]` panics on a
    // missing entry. After scrubbing, literal bodies are blank but the
    // quotes survive, so the `["` shape is still visible.
    let lb = line.as_bytes();
    for col in token_positions(line, "[\"") {
        let prev = if col == 0 { b' ' } else { lb[col - 1] };
        if is_ident(prev) || prev == b']' || prev == b')' {
            out.push(Match {
                col,
                rule: "no-panic",
                message: "string-key indexing panics on a missing entry; use `.get(...)`"
                    .to_string(),
            });
        }
    }
}

/// Runs the net-deadline rule over one scrubbed line: blocking socket
/// calls, and explicit deadline removal, are flagged. One hung peer must
/// never be able to stall the coordinator or a worker forever, so every
/// read/write/connect goes through the deadline helpers
/// (`fae_net::deadline`), which set a timeout first and pragma their own
/// blessed call sites.
///
/// Lexical gaps, documented: `connect(` is matched only as the bare call
/// (`TcpStream::connect_timeout` has the deadline built in and does not
/// match), and file I/O in non-net crates never sees this rule (scope is
/// the fae-net crate alone — `read_exact` on a `File` is fine elsewhere).
pub fn net_deadline_matches(line: &str, out: &mut Vec<Match>) {
    for (tok, what) in [
        (".read_exact(", "`read_exact` blocks until the peer sends"),
        (".read_to_end(", "`read_to_end` blocks until the peer closes"),
        (".read_until(", "`read_until` blocks until the delimiter arrives"),
        (".write_all(", "`write_all` blocks while the send buffer is full"),
        ("connect(", "`connect` blocks for the OS default (minutes)"),
    ] {
        for col in token_positions(line, tok) {
            out.push(Match {
                col,
                rule: "net-deadline",
                message: format!(
                    "{what} — unbounded without a prior deadline; use the \
                     fae_net::deadline helpers (or set a timeout and pragma the site)"
                ),
            });
        }
    }
    for tok in ["set_read_timeout(None)", "set_write_timeout(None)"] {
        for col in token_positions(line, tok) {
            out.push(Match {
                col,
                rule: "net-deadline",
                message: format!(
                    "`{tok}` removes the socket deadline, making every later call \
                     unbounded; deadlines are load-bearing in fae-net"
                ),
            });
        }
    }
}

/// Runs the metric-name rule over one line. Call sites are located on
/// the *scrubbed* line (so names quoted in comments or strings never
/// fire), but the literal's body is blanked there — the name itself is
/// read back out of the *raw* line at the same byte offsets, which the
/// scrubber guarantees to preserve.
///
/// The contract: a name passed to `counter_add`/`gauge_set`/`observe`
/// becomes a Prometheus series `fae_<name>` with every non-alphanumeric
/// byte mapped to `_`. Names outside `[a-z0-9._]` (or with leading /
/// trailing / doubled separators) can collide after that mapping or
/// churn the exposition schema, so they are rejected at the source.
///
/// Lexical gap, documented: a *dynamic* first argument (a variable,
/// as in the telemetry crate's own forwarding layer) is not checked —
/// the rule audits the literal emission sites, which is where names
/// are actually minted.
pub fn metric_name_matches(line: &str, raw: &str, out: &mut Vec<Match>) {
    for tok in [".counter_add(", ".gauge_set(", ".observe("] {
        for col in token_positions(line, tok) {
            let start = col + tok.len();
            let rest = line.get(start..).unwrap_or("");
            let arg_at = start + (rest.len() - rest.trim_start().len());
            // Dynamic (non-literal) name: out of lexical reach, skip.
            if line.as_bytes().get(arg_at) != Some(&b'"') {
                continue;
            }
            let Some(raw_rest) = raw.get(arg_at + 1..) else { continue };
            // A literal that does not close on this line is already
            // suspicious formatting; skip rather than misreport.
            let Some(end) = raw_rest.find('"') else { continue };
            let name = &raw_rest[..end];
            let charset_ok = name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_');
            let shape_ok = name.as_bytes().first().is_some_and(|b| b.is_ascii_lowercase())
                && !name.ends_with(['.', '_'])
                && !name.contains("..");
            if !(charset_ok && shape_ok) {
                out.push(Match {
                    col,
                    rule: "metric-name",
                    message: format!(
                        "metric name \"{name}\" is not a stable lowercase dotted identifier \
                         ([a-z0-9._], starting with a letter); the Prometheus exposition maps \
                         non-alphanumerics to `_`, so loose names collide or churn the schema"
                    ),
                });
            }
        }
    }
}

/// Runs the float-fuse rule over one scrubbed line: every fixed-width
/// 8-lane f32 unroll site (`.chunks_exact(8)` / `.chunks_exact_mut(8)`,
/// the shape all `fae_nn::lanes` kernels share) must carry a pragma
/// stating which side of the bit-identity contract it is on —
/// elementwise (no f32 reassociation) or reduction (reorders addition,
/// the documented carve-out). The pragma's reason must cite the contract
/// anchor `DESIGN.md §14`; that citation is validated where pragmas are
/// parsed (`lint_source`), and a float-fuse pragma without it is a
/// `bad-pragma`.
///
/// Lexical gap, documented: only the literal width-8 call fires. Other
/// widths (`chunks_exact(4)`) or a variable width are not this
/// workspace's unroll idiom and stay out of scope.
pub fn float_fuse_matches(line: &str, out: &mut Vec<Match>) {
    for tok in [".chunks_exact(8)", ".chunks_exact_mut(8)"] {
        for col in token_positions(line, tok) {
            out.push(Match {
                col,
                rule: "float-fuse",
                message: format!(
                    "`{tok}` is an 8-lane f32 unroll; pragma the site with its \
                     bit-identity contract (elementwise vs reduction carve-out), \
                     citing DESIGN.md §14"
                ),
            });
        }
    }
}

/// The accounting rule: a charge on a receiver that is lexically a
/// timeline (its last path segment contains "timeline") must name its
/// phase — either a `Phase::X` constant or a binding whose name contains
/// `phase`. Charges through receivers with other names are only checked
/// when they already use `Phase::` (and then trivially pass); this is
/// the documented lexical gap.
fn timeline_matches(line: &str, out: &mut Vec<Match>) {
    let lb = line.as_bytes();
    for col in token_positions(line, ".add(") {
        // Receiver: walk left over a path/field expression.
        let mut s = col;
        while s > 0 {
            let b = lb[s - 1];
            if is_ident(b) || b == b'.' || b == b':' || b == b'*' || b == b'&' {
                s -= 1;
            } else {
                break;
            }
        }
        let receiver = &line[s..col];
        let last_segment = receiver.rsplit('.').next().unwrap_or(receiver);
        if !last_segment.to_ascii_lowercase().contains("timeline") {
            continue;
        }
        // First argument: up to the first depth-0 comma (or close paren).
        let args_at = col + ".add(".len();
        let mut depth = 0usize;
        let mut end = args_at;
        while end < lb.len() {
            match lb[end] {
                b'(' | b'[' => depth += 1,
                b')' | b']' if depth == 0 => break,
                b')' | b']' => depth -= 1,
                b',' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let first_arg = line[args_at..end].trim();
        let named =
            first_arg.contains("Phase::") || first_arg.to_ascii_lowercase().contains("phase");
        if !named {
            out.push(Match {
                col,
                rule: "timeline-phase",
                message: format!(
                    "Timeline charge `{receiver}.add({first_arg}, ...)` does not name its \
                     phase; pass a `Phase::...` constant (or a `phase`-named binding) so \
                     the journal's phase-sum invariant stays auditable"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(line: &str) -> Vec<&'static str> {
        let mut m = Vec::new();
        deterministic_matches(line, &mut m);
        m.into_iter().map(|x| x.rule).collect()
    }

    fn nopanic(line: &str) -> usize {
        let mut m = Vec::new();
        no_panic_matches(line, &mut m);
        m.len()
    }

    #[test]
    fn lexical_det_rule_is_timeline_only_now() {
        // The mention-based matchers moved to `legacy_det_matches`; the
        // live lexical path must no longer fire on mere mentions.
        assert!(det("let t = Instant::now();").is_empty());
        assert!(det("let m: HashMap<u32, f32> = HashMap::new();").is_empty());
        assert!(det("let x = instant_rate;").is_empty());
    }

    #[test]
    fn legacy_matchers_still_count_mentions() {
        let legacy = |line: &str| {
            let mut m = Vec::new();
            legacy_det_matches(line, &mut m);
            m.into_iter().map(|x| x.rule).collect::<Vec<_>>()
        };
        assert_eq!(legacy("let t = Instant::now();"), vec!["wall-clock"]);
        assert_eq!(legacy("use std::time::SystemTime;"), vec!["wall-clock"]);
        assert_eq!(legacy("let mut r = thread_rng();"), vec!["ambient-rng"]);
        assert_eq!(legacy("let m: HashMap<u32, f32> = HashMap::new();").len(), 2);
        assert!(legacy("let x = instant_rate;").is_empty());
    }

    #[test]
    fn no_panic_hits_and_misses() {
        assert_eq!(nopanic("x.unwrap()"), 1);
        assert_eq!(nopanic("x.expect(\"m\")"), 1);
        assert_eq!(nopanic("panic!(\"boom\")"), 1);
        assert_eq!(nopanic("x.unwrap_or(0)"), 0);
        assert_eq!(nopanic("x.unwrap_or_else(f)"), 0);
        assert_eq!(nopanic("let v = arr[i];"), 0);
        assert_eq!(nopanic("let v = m[\"key\"];"), 1);
    }

    #[test]
    fn net_deadline_hits_and_misses() {
        let net = |l: &str| {
            let mut m = Vec::new();
            net_deadline_matches(l, &mut m);
            m.len()
        };
        assert_eq!(net("stream.read_exact(&mut buf)?;"), 1);
        assert_eq!(net("stream.write_all(&bytes)?;"), 1);
        assert_eq!(net("stream.read_to_end(&mut v)?;"), 1);
        assert_eq!(net("reader.read_until(b'\\n', &mut v)?;"), 1);
        assert_eq!(net("TcpStream::connect(addr)?;"), 1);
        assert_eq!(net("stream.set_read_timeout(None)?;"), 1);
        assert_eq!(net("stream.set_write_timeout(None)?;"), 1);
        // The deadline-carrying forms are exactly what the rule demands.
        assert_eq!(net("TcpStream::connect_timeout(&a, dur(ms))?;"), 0);
        assert_eq!(net("stream.set_read_timeout(Some(dur(ms)))?;"), 0);
        assert_eq!(net("stream.flush()?;"), 0);
        assert_eq!(net("let reconnect = true;"), 0);
    }

    #[test]
    fn metric_name_hits_and_misses() {
        // The matcher sees the scrubbed line (literal bodies blanked,
        // quotes kept) plus the raw line; build both the way scrub does.
        let check = |raw: &str| {
            let scrubbed = crate::scrub::scrub(raw);
            let mut m = Vec::new();
            metric_name_matches(scrubbed.text.lines().next().unwrap_or(""), raw, &mut m);
            m.len()
        };
        assert_eq!(check("t.counter_add(\"train.steps_hot\", 1);"), 0);
        assert_eq!(check("t.gauge_set(\"serve.hit_rate\", r);"), 0);
        assert_eq!(check("t.observe(\"serve.latency_s\", v);"), 0);
        assert_eq!(check("t.counter_add( \"net.joins\", 1);"), 0, "leading space before literal");
        // Dynamic names (the forwarding layer) are out of lexical reach.
        assert_eq!(check("m.counter_add(name, v);"), 0);
        // Numeric observe (a histogram value, not a telemetry name).
        assert_eq!(check("window.observe(loss);"), 0);
        // Names quoted in comments never fire: the site is located on
        // the scrubbed line, where comments are blank.
        assert_eq!(check("let x = 1; // call t.counter_add(\"Bad Name\", 1)"), 0);
        // Violations: uppercase, spaces, dashes, separators misused.
        assert_eq!(check("t.counter_add(\"Train.Steps\", 1);"), 1);
        assert_eq!(check("t.gauge_set(\"serve hit rate\", r);"), 1);
        assert_eq!(check("t.observe(\"serve-latency\", v);"), 1);
        assert_eq!(check("t.counter_add(\"\", 1);"), 1);
        assert_eq!(check("t.counter_add(\".joins\", 1);"), 1);
        assert_eq!(check("t.counter_add(\"net..joins\", 1);"), 1);
        assert_eq!(check("t.counter_add(\"net.joins_\", 1);"), 1);
    }

    #[test]
    fn float_fuse_hits_and_misses() {
        let fuse = |l: &str| {
            let mut m = Vec::new();
            float_fuse_matches(l, &mut m);
            m.len()
        };
        assert_eq!(fuse("let mut d = dst.chunks_exact_mut(8);"), 1);
        assert_eq!(fuse("let mut s = src.chunks_exact(8);"), 1);
        assert_eq!(fuse("for (a, b) in x.chunks_exact(8).zip(y.chunks_exact(8)) {"), 2);
        // Other widths and dynamic widths are not the unroll idiom.
        assert_eq!(fuse("let mut d = dst.chunks_exact(4);"), 0);
        assert_eq!(fuse("let mut d = dst.chunks_exact(width);"), 0);
        assert_eq!(fuse("let n = dst.len() / 8;"), 0);
    }

    #[test]
    fn timeline_rule() {
        let fire = |l: &str| det(l).contains(&"timeline-phase");
        assert!(fire("self.timeline.add(p, secs);"));
        assert!(!fire("self.timeline.add(Phase::Transfer, secs);"));
        assert!(!fire("timeline.add(*phase, d.phases.0[i]);"));
        assert!(!fire("hist.add(v);"));
        assert!(!fire("t.add(Phase::Framework, 1.0);"));
    }
}
