//! Lock-order: acquisition-graph analysis across the workspace.
//!
//! Lock *classes* are struct fields typed `Mutex<..>`/`RwLock<..>`
//! (collections of locks, `Vec<RwLock<..>>`, are one class). For every
//! function, the pass tracks which guards are held at each statement —
//! plain `let g = ..lock()` guards live to the end of their enclosing
//! block (or an explicit `drop(g)`); guards consumed inside a
//! `match`/`if let` live only for that statement — and records an edge
//! A→B whenever B is acquired while A is held.
//!
//! Findings:
//! * acquiring the *same* class while held is reported unless both
//!   sides are `read()` (the sharded-table pattern: all shard read
//!   guards taken in one statement can't deadlock with each other);
//! * a cycle in the cross-class graph (A→B somewhere, B→A elsewhere)
//!   is reported at every edge on the cycle.
//!
//! Interprocedural holds (fn A calls fn B while holding a lock B also
//! takes) are out of reach — DESIGN.md §16 lists this caveat.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use super::{PassDiag, PassFile};
use crate::tokens::TokKind;
use crate::tree::{items, Node, TreeView};

#[derive(Clone, Debug)]
struct Acq {
    class: String,
    is_read: bool,
    binding: Option<String>,
    file: PathBuf,
    line: usize,
    offset: usize,
}

#[derive(Clone, Debug)]
struct Edge {
    from: String,
    to: String,
    file: PathBuf,
    line: usize,
    offset: usize,
}

/// Runs the pass over the workspace file set.
pub fn run(files: &[PassFile]) -> Vec<PassDiag> {
    // Lock classes: field name → "Struct.field". Collected workspace-
    // wide so a file using a lock declared in a sibling module resolves.
    let mut classes: BTreeMap<String, String> = BTreeMap::new();
    for f in files {
        let view = TreeView::new(&f.source);
        let it = items(&view);
        for field in &it.fields {
            let locky =
                field.ty.split_whitespace().any(|w| w.contains("Mutex") || w.contains("RwLock"));
            if locky {
                classes
                    .entry(field.field.clone())
                    .or_insert_with(|| format!("{}.{}", field.strukt, field.field));
            }
        }
    }
    if classes.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for f in files {
        let view = TreeView::new(&f.source);
        let it = items(&view);
        for func in &it.fns {
            if func.body == (0, 0) || func.body.0 == 0 {
                continue;
            }
            let Some(body) = find_group(&view.nodes, func.body.0 - 1) else { continue };
            let mut held: Vec<Acq> = Vec::new();
            let mut aliases: BTreeMap<String, String> = BTreeMap::new();
            walk(&view, f, &classes, body, &mut held, &mut aliases, &mut edges, &mut out);
        }
    }

    // Cycle detection over the cross-class digraph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        if e.from != e.to {
            adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
        }
    }
    let cyclic = cyclic_nodes(&adj);
    for e in &edges {
        if e.from != e.to && cyclic.contains(e.from.as_str()) && cyclic.contains(e.to.as_str()) {
            out.push(PassDiag {
                file: e.file.clone(),
                line: e.line,
                offset: e.offset,
                rule: "lock-order",
                message: format!(
                    "acquiring `{}` while holding `{}` participates in a lock-order cycle; \
                     pick one global order and stick to it",
                    e.to, e.from
                ),
            });
        }
    }
    out
}

/// Nodes on at least one directed cycle (strongly-connected components
/// of size > 1, or with a self loop).
fn cyclic_nodes<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> BTreeSet<&'a str> {
    // Small graphs: for each node, DFS to see if it can reach itself.
    let mut out = BTreeSet::new();
    for &start in adj.keys() {
        let mut stack: Vec<&str> = adj[start].iter().copied().collect();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                out.insert(start);
                break;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
    }
    out
}

fn find_group(nodes: &[Node], open: usize) -> Option<&[Node]> {
    for n in nodes {
        if let Node::Group { open: o, children, .. } = n {
            if *o == open {
                return Some(children);
            }
            if let Some(found) = find_group(children, open) {
                return Some(found);
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn walk(
    view: &TreeView<'_>,
    f: &PassFile,
    classes: &BTreeMap<String, String>,
    nodes: &[Node],
    held: &mut Vec<Acq>,
    aliases: &mut BTreeMap<String, String>,
    edges: &mut Vec<Edge>,
    out: &mut Vec<PassDiag>,
) {
    let entry_held = held.len();
    let entry_aliases = aliases.clone();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < nodes.len() {
        let end_stmt = match &nodes[i] {
            Node::Leaf(k) => view.is_punct(*k, b';'),
            Node::Group { delim, .. } => {
                *delim == b'{'
                    && !matches!(
                        nodes.get(i + 1),
                        Some(Node::Leaf(k)) if view.is_ident(*k, "else")
                    )
            }
        };
        if end_stmt {
            let stmt = &nodes[start..=i];
            process(view, f, classes, stmt, held, aliases, edges, out);
            start = i + 1;
        }
        i += 1;
    }
    if start < nodes.len() {
        process(view, f, classes, &nodes[start..], held, aliases, edges, out);
    }
    held.truncate(entry_held);
    *aliases = entry_aliases;
}

#[allow(clippy::too_many_arguments)]
fn process(
    view: &TreeView<'_>,
    f: &PassFile,
    classes: &BTreeMap<String, String>,
    stmt: &[Node],
    held: &mut Vec<Acq>,
    aliases: &mut BTreeMap<String, String>,
    edges: &mut Vec<Edge>,
    out: &mut Vec<PassDiag>,
) {
    if stmt.is_empty() {
        return;
    }
    let head_word = match stmt.first() {
        Some(Node::Leaf(k)) if view.toks[*k].kind == TokKind::Ident => view.text(*k),
        _ => "",
    };
    let is_control = matches!(head_word, "if" | "while" | "for" | "match" | "loop" | "unsafe");

    // `drop(g)` releases a held guard.
    if head_word == "drop" {
        let toks = crate::tree::flatten(stmt);
        if let Some(&arg) = toks.get(2) {
            if view.toks[arg].kind == TokKind::Ident {
                let name = view.text(arg);
                held.retain(|a| a.binding.as_deref() != Some(name));
            }
        }
        return;
    }

    // Header/expression tokens: everything outside the brace blocks.
    let mut header: Vec<usize> = Vec::new();
    let mut blocks: Vec<&[Node]> = Vec::new();
    for n in stmt {
        match n {
            Node::Group { delim: b'{', children, .. } if is_control => blocks.push(children),
            other => flat_into(other, &mut header),
        }
    }

    // `for pat in ..lock-collection..` aliases the loop variable(s).
    let mut local_aliases: Vec<(String, String)> = Vec::new();
    if head_word == "for" {
        let field_in_header = header.iter().find_map(|&k| {
            if view.toks[k].kind == TokKind::Ident {
                classes.get(view.text(k)).cloned()
            } else {
                None
            }
        });
        if let Some(class) = field_in_header {
            let mut active = false;
            for &k in &header {
                if view.toks[k].kind == TokKind::Ident {
                    let w = view.text(k);
                    if w == "for" {
                        active = true;
                        continue;
                    }
                    if w == "in" {
                        break;
                    }
                    if active {
                        local_aliases.push((w.to_string(), class.clone()));
                    }
                }
            }
        }
    }

    // Acquisitions in the header/expression, left to right.
    let statement_scoped =
        is_control || header.iter().any(|&k| view.is_ident(k, "match")) || head_word != "let";
    let binding = if head_word == "let" {
        header.iter().skip(1).find_map(|&k| {
            if view.toks[k].kind == TokKind::Ident && view.text(k) != "mut" {
                Some(view.text(k).to_string())
            } else {
                None
            }
        })
    } else {
        None
    };
    let mut acquired_here: Vec<Acq> = Vec::new();
    for (pos, &k) in header.iter().enumerate() {
        if view.toks[k].kind != TokKind::Ident {
            continue;
        }
        let m = view.text(k);
        if !matches!(m, "read" | "write" | "lock") {
            continue;
        }
        let prev_dot = pos > 0 && punct_of(view, header[pos - 1]) == Some(b'.');
        let next_paren = header.get(pos + 1).is_some_and(|&j| punct_of(view, j) == Some(b'('));
        if !prev_dot || !next_paren {
            continue;
        }
        // Class: nearest known lock field (or alias) to the left.
        let class =
            header[..pos].iter().rev().find_map(|&j| {
                if view.toks[j].kind == TokKind::Ident {
                    let w = view.text(j);
                    classes.get(w).cloned().or_else(|| aliases.get(w).cloned()).or_else(|| {
                        local_aliases.iter().find(|(n, _)| n == w).map(|(_, c)| c.clone())
                    })
                } else {
                    None
                }
            });
        let Some(class) = class else { continue };
        let acq = Acq {
            class,
            is_read: m == "read",
            binding: binding.clone(),
            file: f.rel.clone(),
            line: view.line(k),
            offset: view.toks[k].start,
        };
        for prior in held.iter().chain(acquired_here.iter()) {
            if prior.class == acq.class {
                if !(prior.is_read && acq.is_read) {
                    out.push(PassDiag {
                        file: acq.file.clone(),
                        line: acq.line,
                        offset: acq.offset,
                        rule: "lock-order",
                        message: format!(
                            "`{}` is re-acquired (non-read) while already held — \
                             self-deadlock on the same lock class",
                            acq.class
                        ),
                    });
                }
            } else {
                edges.push(Edge {
                    from: prior.class.clone(),
                    to: acq.class.clone(),
                    file: acq.file.clone(),
                    line: acq.line,
                    offset: acq.offset,
                });
            }
        }
        acquired_here.push(acq);
    }

    let held_before = held.len();
    held.extend(acquired_here);
    for (n, c) in &local_aliases {
        aliases.insert(n.clone(), c.clone());
    }
    for b in &blocks {
        walk(view, f, classes, b, held, aliases, edges, out);
    }
    for (n, _) in &local_aliases {
        aliases.remove(n);
    }
    if statement_scoped {
        // Temporary/consumed guards do not outlive the statement.
        held.truncate(held_before);
    }
}

fn flat_into(n: &Node, out: &mut Vec<usize>) {
    match n {
        Node::Leaf(k) => out.push(*k),
        Node::Group { open, close, children, .. } => {
            out.push(*open);
            for c in children {
                flat_into(c, out);
            }
            out.push(*close);
        }
    }
}

fn punct_of(view: &TreeView<'_>, k: usize) -> Option<u8> {
    if view.toks[k].kind == TokKind::Punct {
        view.source.as_bytes().get(view.toks[k].start).copied()
    } else {
        None
    }
}
