//! Phase-balance: static accounting for the ±1e-6 journal invariant.
//!
//! The runtime invariant (fae-telemetry `merge::check_invariant`) only
//! sees charge sites that executed. This pass closes the gap statically:
//!
//! 1. the `Phase` enum, `Phase::ALL`, and `Phase::index` must agree —
//!    every variant in `ALL` exactly once, `index` a bijection onto
//!    `0..n`, every `match` over `Phase` either wildcarded or total;
//! 2. every phase-indexed array (`seconds: [f64; N]` in `Timeline`,
//!    `PhaseSeconds(pub [f64; N])` in the journal) must have
//!    `N == variant count`, so a 9th phase cannot silently truncate;
//! 3. every `Timeline` charge site (`.add(Phase::X, ..)`) in the
//!    deterministic and net crates must name a declared variant.
//!
//! Rule id: `phase-balance`. Findings land on the offending line and
//! respect pragmas/test regions like every other rule.

use std::collections::{BTreeMap, BTreeSet};

use super::{PassDiag, PassFile};
use crate::tokens::TokKind;
use crate::tree::{items, TreeView};

/// Runs the pass over the workspace file set.
pub fn run(files: &[PassFile]) -> Vec<PassDiag> {
    let mut out = Vec::new();

    // Locate the canonical Phase enum: the one in the file that also
    // declares `ALL`. Fixture trees without one skip the pass.
    let mut phase_file: Option<&PassFile> = None;
    let mut variants: Vec<(String, usize)> = Vec::new();
    for f in files {
        let view = TreeView::new(&f.source);
        let it = items(&view);
        if let Some(e) = it.enums.iter().find(|e| e.name == "Phase") {
            let declares_all = view
                .toks
                .iter()
                .enumerate()
                .any(|(i, t)| t.kind == TokKind::Ident && view.text(i) == "ALL");
            if declares_all {
                phase_file = Some(f);
                variants = e.variants.clone();
                break;
            }
        }
    }
    let Some(pf) = phase_file else { return out };
    let names: BTreeSet<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
    let view = TreeView::new(&pf.source);

    check_all_const(&view, pf, &variants, &mut out);
    check_matches(&view, pf, &variants, &mut out);
    check_arrays(files, variants.len(), &mut out);
    check_charge_sites(files, &names, &mut out);
    out
}

/// `Phase::ALL` must list every variant exactly once, and its declared
/// length `[Phase; N]` must equal the variant count.
fn check_all_const(
    view: &TreeView<'_>,
    pf: &PassFile,
    variants: &[(String, usize)],
    out: &mut Vec<PassDiag>,
) {
    let toks = &view.toks;
    let mut all_entries: Vec<String> = Vec::new();
    let mut all_line = 0usize;
    let mut all_offset = 0usize;
    let mut declared_len: Option<usize> = None;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && view.text(i) == "ALL" {
            all_line = view.line(i);
            all_offset = toks[i].start;
            // `ALL: [Phase; N] = [Phase::A, ...];` — scan to the `;`
            // ending the item, collecting `Phase :: V` pairs and the
            // first `[Phase ; N]` length.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                match punct(view, j) {
                    Some(b'[') | Some(b'(') | Some(b'{') => depth += 1,
                    Some(b']') | Some(b')') | Some(b'}') => depth -= 1,
                    Some(b';') if depth == 0 => break,
                    Some(b';') if depth == 1 && declared_len.is_none() => {
                        if let Some(n) = toks.get(j + 1).and_then(|t| {
                            if t.kind == TokKind::Num {
                                view.text(j + 1).parse::<usize>().ok()
                            } else {
                                None
                            }
                        }) {
                            declared_len = Some(n);
                        }
                    }
                    _ => {}
                }
                if toks[j].kind == TokKind::Ident
                    && view.text(j) == "Phase"
                    && punct(view, j + 1) == Some(b':')
                    && punct(view, j + 2) == Some(b':')
                    && toks.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    all_entries.push(view.text(j + 3).to_string());
                    j += 4;
                    continue;
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    if all_line == 0 {
        out.push(diag(pf, 1, 0, "`Phase` enum found but no `ALL` constant to account it"));
        return;
    }
    if let Some(n) = declared_len {
        if n != variants.len() {
            out.push(diag(
                pf,
                all_line,
                all_offset,
                &format!(
                    "`Phase::ALL` declares length {n} but the enum has {} variants",
                    variants.len()
                ),
            ));
        }
    }
    let mut seen = BTreeMap::new();
    for v in &all_entries {
        *seen.entry(v.clone()).or_insert(0usize) += 1;
    }
    for (name, line) in variants {
        match seen.get(name).copied().unwrap_or(0) {
            0 => out.push(diag(
                pf,
                *line,
                0,
                &format!("variant `{name}` is missing from `Phase::ALL` — its charges would escape the journal invariant"),
            )),
            1 => {}
            k => out.push(diag(
                pf,
                all_line,
                all_offset,
                &format!("variant `{name}` appears {k} times in `Phase::ALL`"),
            )),
        }
    }
    for name in seen.keys() {
        if !variants.iter().any(|(v, _)| v == name) {
            out.push(diag(
                pf,
                all_line,
                all_offset,
                &format!("`Phase::ALL` lists `{name}`, which is not a variant"),
            ));
        }
    }
}

/// Every `match` in the Phase file with `Phase::V =>` arms must either
/// carry a wildcard or cover all variants; `index` arm values must be a
/// bijection onto `0..n`.
fn check_matches(
    view: &TreeView<'_>,
    pf: &PassFile,
    variants: &[(String, usize)],
    out: &mut Vec<PassDiag>,
) {
    let it = items(view);
    for f in &it.fns {
        if f.body == (0, 0) {
            continue;
        }
        let (lo, hi) = f.body;
        let mut covered: BTreeSet<String> = BTreeSet::new();
        let mut wildcard = false;
        let mut index_map: BTreeMap<String, usize> = BTreeMap::new();
        let mut j = lo;
        while j < hi.min(view.toks.len()) {
            // Pattern position: `Phase :: V` followed (after optional
            // `{..}`/`(..)`) by `=>`.
            if view.toks[j].kind == TokKind::Ident
                && view.text(j) == "Phase"
                && punct(view, j + 1) == Some(b':')
                && punct(view, j + 2) == Some(b':')
                && view.toks.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let vname = view.text(j + 3).to_string();
                let mut k = j + 4;
                // Skip a struct/tuple sub-pattern.
                let mut depth = 0i32;
                while k < view.toks.len() {
                    match punct(view, k) {
                        Some(b'{') | Some(b'(') => depth += 1,
                        Some(b'}') | Some(b')') => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        _ if depth > 0 => {}
                        _ => break,
                    }
                    k += 1;
                }
                let is_arrow = punct(view, k) == Some(b'=')
                    && punct(view, k + 1) == Some(b'>')
                    && view.toks.get(k + 1).is_some_and(|t| t.start == view.toks[k].end);
                if is_arrow {
                    covered.insert(vname.clone());
                    if f.name == "index" {
                        if let Some(t) = view.toks.get(k + 2) {
                            if t.kind == TokKind::Num {
                                if let Ok(n) = view.text(k + 2).parse::<usize>() {
                                    index_map.insert(vname, n);
                                }
                            }
                        }
                    }
                    j = k + 2;
                    continue;
                }
            }
            if view.toks[j].kind == TokKind::Ident
                && view.text(j) == "_"
                && punct(view, j + 1) == Some(b'=')
                && punct(view, j + 2) == Some(b'>')
            {
                wildcard = true;
            }
            j += 1;
        }
        if !covered.is_empty() && !wildcard {
            for (name, _) in variants {
                if !covered.contains(name) {
                    out.push(diag(
                        pf,
                        f.line,
                        view.toks[f.body.0.min(view.toks.len() - 1)].start,
                        &format!(
                            "match over `Phase` in `{}` does not cover variant `{name}`",
                            f.name
                        ),
                    ));
                }
            }
        }
        if f.name == "index" && !index_map.is_empty() {
            let mut used = BTreeSet::new();
            for (v, n) in &index_map {
                if *n >= variants.len() {
                    out.push(diag(
                        pf,
                        f.line,
                        0,
                        &format!("`Phase::index` maps `{v}` to {n}, outside 0..{}", variants.len()),
                    ));
                }
                if !used.insert(*n) {
                    out.push(diag(
                        pf,
                        f.line,
                        0,
                        &format!("`Phase::index` maps two variants to slot {n}"),
                    ));
                }
            }
        }
    }
}

/// Phase-indexed arrays: `[f64; N]` fields of `Timeline` and
/// `PhaseSeconds` must have `N == variant count`.
fn check_arrays(files: &[PassFile], n_variants: usize, out: &mut Vec<PassDiag>) {
    for f in files {
        if !f.source.contains("Timeline") && !f.source.contains("PhaseSeconds") {
            continue;
        }
        let view = TreeView::new(&f.source);
        let it = items(&view);
        for field in &it.fields {
            if field.strukt != "Timeline" && field.strukt != "PhaseSeconds" {
                continue;
            }
            // Flattened type text looks like `[ f64 ; 8 ]`.
            let words: Vec<&str> = field.ty.split_whitespace().collect();
            let Some(fpos) = words.iter().position(|w| *w == "f64") else { continue };
            if words.get(fpos + 1) != Some(&";") {
                continue;
            }
            let Some(n) = words.get(fpos + 2).and_then(|w| w.parse::<usize>().ok()) else {
                continue;
            };
            if n != n_variants {
                out.push(diag(
                    f,
                    field.line,
                    0,
                    &format!(
                        "`{}.{}` is `[f64; {n}]` but `Phase` has {n_variants} variants — \
                         a phase would be unaccounted",
                        field.strukt, field.field
                    ),
                ));
            }
        }
    }
}

/// Every `.add(Phase::X, ..)` charge site in det/net files must name a
/// declared variant (`Phase::ALL` and other UPPER_CASE associated items
/// are not charges).
fn check_charge_sites(files: &[PassFile], names: &BTreeSet<&str>, out: &mut Vec<PassDiag>) {
    for f in files {
        if !(f.class.deterministic || f.class.net) {
            continue;
        }
        if !f.source.contains("Phase") {
            continue;
        }
        let view = TreeView::new(&f.source);
        let toks = &view.toks;
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || view.text(i) != "Phase" {
                continue;
            }
            if punct(&view, i + 1) != Some(b':') || punct(&view, i + 2) != Some(b':') {
                continue;
            }
            let Some(t) = toks.get(i + 3) else { continue };
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = view.text(i + 3);
            let is_assoc_const = name.chars().all(|c| c.is_ascii_uppercase() || c == '_');
            let is_method = name.chars().next().is_some_and(|c| c.is_ascii_lowercase());
            if is_assoc_const || is_method {
                continue;
            }
            if !names.contains(name) {
                out.push(diag(
                    f,
                    view.line(i),
                    toks[i].start,
                    &format!("`Phase::{name}` is not a declared `Phase` variant"),
                ));
            }
        }
    }
}

fn punct(view: &TreeView<'_>, i: usize) -> Option<u8> {
    view.toks.get(i).and_then(|t| {
        if t.kind == TokKind::Punct {
            view.source.as_bytes().get(t.start).copied()
        } else {
            None
        }
    })
}

fn diag(f: &PassFile, line: usize, offset: usize, message: &str) -> PassDiag {
    PassDiag {
        file: f.rel.clone(),
        line,
        offset,
        rule: "phase-balance",
        message: message.to_string(),
    }
}
