//! Wire-compat: static checks over `fae-net::wire` tag declarations.
//!
//! Parses the `Message` enum plus the `tag`/`name`/`encode_payload`/
//! `decode_payload` functions and cross-checks them:
//!
//! * every variant has exactly one tag, and tags are unique;
//! * `decode_payload` maps every declared tag back to the *same*
//!   variant (encode/decode bijection), and decodes no undeclared tag;
//! * `name` and `encode_payload` cover every variant (or-patterns and
//!   a wildcard arm count as coverage);
//! * every tag falls inside exactly one of the ranges DESIGN.md §12
//!   declares in `fae-lint: wire-tags <group> = <lo>-<hi>` lines, and
//!   the declared ranges are pairwise disjoint.
//!
//! Rule id: `wire-compat`.

use std::collections::BTreeMap;

use super::{PassDiag, PassFile};
use crate::tokens::TokKind;
use crate::tree::{items, TreeView};

/// A declared tag range from DESIGN.md §12.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagRange {
    /// Group name (`core`, `telemetry`, ...).
    pub name: String,
    /// Inclusive low tag.
    pub lo: u64,
    /// Inclusive high tag.
    pub hi: u64,
}

/// Parses `fae-lint: wire-tags <name> = <lo>-<hi>` declarations out of
/// the design document.
pub fn parse_ranges(design: &str) -> Vec<TagRange> {
    let mut out = Vec::new();
    for line in design.lines() {
        let Some(rest) = line.trim().strip_prefix("fae-lint: wire-tags ") else { continue };
        let Some((name, span)) = rest.split_once('=') else { continue };
        let Some((lo, hi)) = span.split_once('-') else { continue };
        let (Ok(lo), Ok(hi)) = (lo.trim().parse::<u64>(), hi.trim().parse::<u64>()) else {
            continue;
        };
        out.push(TagRange { name: name.trim().to_string(), lo, hi });
    }
    out
}

/// Runs the pass against one wire source file and the design document.
pub fn run(wire: &PassFile, design: &str) -> Vec<PassDiag> {
    let mut out = Vec::new();
    let view = TreeView::new(&wire.source);
    let it = items(&view);
    let Some(msg) = it.enums.iter().find(|e| e.name == "Message") else {
        return out;
    };
    let enum_line = msg.line;

    let mut tag_map: BTreeMap<String, u64> = BTreeMap::new();
    let mut name_covered: BTreeMap<String, bool> = BTreeMap::new();
    let mut encode_covered: BTreeMap<String, bool> = BTreeMap::new();
    let mut decode_map: BTreeMap<u64, String> = BTreeMap::new();
    let mut encode_wildcard = false;
    let mut name_wildcard = false;

    for f in &it.fns {
        if f.body == (0, 0) {
            continue;
        }
        let (lo, hi) = f.body;
        match f.name.as_str() {
            "tag" => {
                for (v, n, _line) in variant_arms(&view, lo, hi) {
                    if let Some(prev) = tag_map.insert(v.clone(), n) {
                        if prev != n {
                            out.push(diag(
                                wire,
                                f.line,
                                &format!("variant `{v}` is tagged both {prev} and {n}"),
                            ));
                        }
                    }
                }
            }
            "name" => {
                for v in pattern_variants(&view, lo, hi) {
                    name_covered.insert(v, true);
                }
                name_wildcard = has_wildcard_arm(&view, lo, hi);
            }
            "encode_payload" => {
                for v in pattern_variants(&view, lo, hi) {
                    encode_covered.insert(v, true);
                }
                encode_wildcard = has_wildcard_arm(&view, lo, hi);
            }
            "decode_payload" | "decode" => {
                for (n, v) in decode_arms(&view, lo, hi) {
                    decode_map.entry(n).or_insert(v);
                }
            }
            _ => {}
        }
    }

    // 1. Every variant tagged, tags unique.
    let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (v, line) in &msg.variants {
        match tag_map.get(v) {
            Some(n) => by_tag.entry(*n).or_default().push(v),
            None => {
                out.push(diag(wire, *line, &format!("variant `{v}` has no tag in `Message::tag`")))
            }
        }
    }
    for (n, vs) in &by_tag {
        if vs.len() > 1 {
            out.push(diag(
                wire,
                enum_line,
                &format!("tag {n} is shared by variants {}", vs.join(", ")),
            ));
        }
    }

    // 2. decode is the inverse of tag.
    for (v, line) in &msg.variants {
        let Some(n) = tag_map.get(v) else { continue };
        match decode_map.get(n) {
            Some(dv) if dv == v => {}
            Some(dv) => {
                out.push(diag(wire, *line, &format!("tag {n} encodes `{v}` but decodes to `{dv}`")))
            }
            None => out.push(diag(
                wire,
                *line,
                &format!("tag {n} (`{v}`) is never decoded — frames would be rejected as corrupt"),
            )),
        }
    }
    for (n, dv) in &decode_map {
        if !tag_map.values().any(|t| t == n) {
            out.push(diag(wire, enum_line, &format!("decode accepts undeclared tag {n} (`{dv}`)")));
        }
    }

    // 3. name/encode exhaustiveness.
    for (v, line) in &msg.variants {
        if !name_wildcard && !name_covered.is_empty() && !name_covered.contains_key(v) {
            out.push(diag(wire, *line, &format!("variant `{v}` is missing from `name`")));
        }
        if !encode_wildcard && !encode_covered.is_empty() && !encode_covered.contains_key(v) {
            out.push(diag(wire, *line, &format!("variant `{v}` is missing from `encode_payload`")));
        }
    }

    // 4. DESIGN.md §12 tag ranges.
    let ranges = parse_ranges(design);
    if ranges.is_empty() {
        out.push(diag(
            wire,
            enum_line,
            "the design document declares no `fae-lint: wire-tags` ranges to check tags against",
        ));
    } else {
        for (i, a) in ranges.iter().enumerate() {
            if a.lo > a.hi {
                out.push(diag(
                    wire,
                    enum_line,
                    &format!("declared range `{}` is empty ({}-{})", a.name, a.lo, a.hi),
                ));
            }
            for b in ranges.iter().skip(i + 1) {
                if a.lo <= b.hi && b.lo <= a.hi {
                    out.push(diag(
                        wire,
                        enum_line,
                        &format!(
                            "declared tag ranges `{}` ({}-{}) and `{}` ({}-{}) overlap",
                            a.name, a.lo, a.hi, b.name, b.lo, b.hi
                        ),
                    ));
                }
            }
        }
        for (v, line) in &msg.variants {
            let Some(n) = tag_map.get(v) else { continue };
            let homes: Vec<&TagRange> =
                ranges.iter().filter(|r| *n >= r.lo && *n <= r.hi).collect();
            if homes.is_empty() {
                out.push(diag(
                    wire,
                    *line,
                    &format!(
                        "tag {n} (`{v}`) falls outside every declared wire-tags range — \
                         declare it in the design document first"
                    ),
                ));
            }
        }
    }
    out
}

fn punct(view: &TreeView<'_>, i: usize) -> Option<u8> {
    view.toks.get(i).and_then(|t| {
        if t.kind == TokKind::Punct {
            view.source.as_bytes().get(t.start).copied()
        } else {
            None
        }
    })
}

/// After a `Message :: V` at `j`, returns the token index past any
/// `{..}`/`(..)` sub-pattern.
fn skip_subpattern(view: &TreeView<'_>, mut k: usize) -> usize {
    let mut depth = 0i32;
    while k < view.toks.len() {
        match punct(view, k) {
            Some(b'{') | Some(b'(') => depth += 1,
            Some(b'}') | Some(b')') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ if depth > 0 => {}
            _ => break,
        }
        k += 1;
    }
    k
}

/// `Message::V .. => NUM` arms (the `tag` fn shape).
fn variant_arms(view: &TreeView<'_>, lo: usize, hi: usize) -> Vec<(String, u64, usize)> {
    let mut out = Vec::new();
    let mut j = lo;
    let hi = hi.min(view.toks.len());
    while j < hi {
        if let Some((v, k)) = message_variant_at(view, j) {
            let k = skip_subpattern(view, k);
            if punct(view, k) == Some(b'=') && punct(view, k + 1) == Some(b'>') {
                if let Some(t) = view.toks.get(k + 2) {
                    if t.kind == TokKind::Num {
                        if let Ok(n) = view.text(k + 2).parse::<u64>() {
                            out.push((v, n, view.line(j)));
                        }
                    }
                }
            }
            j = k;
            continue;
        }
        j += 1;
    }
    out
}

/// Variants appearing in pattern position: followed by `=>` or by an
/// or-pattern `|` that eventually reaches `=>`.
fn pattern_variants(view: &TreeView<'_>, lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = lo;
    let hi = hi.min(view.toks.len());
    while j < hi {
        if let Some((v, k)) = message_variant_at(view, j) {
            let k = skip_subpattern(view, k);
            let next = punct(view, k);
            let is_arrow = next == Some(b'=') && punct(view, k + 1) == Some(b'>');
            let is_or = next == Some(b'|') && punct(view, k + 1) != Some(b'|');
            if is_arrow || is_or {
                out.push(v);
            }
            j = k;
            continue;
        }
        j += 1;
    }
    out
}

/// `NUM => .. Message::V ..` arms (the `decode_payload` shape).
fn decode_arms(view: &TreeView<'_>, lo: usize, hi: usize) -> Vec<(u64, String)> {
    let mut out = Vec::new();
    let mut current: Option<u64> = None;
    let mut j = lo;
    let hi = hi.min(view.toks.len());
    while j < hi {
        if view.toks[j].kind == TokKind::Num
            && punct(view, j + 1) == Some(b'=')
            && punct(view, j + 2) == Some(b'>')
        {
            if let Ok(n) = view.text(j).parse::<u64>() {
                current = Some(n);
            }
            j += 3;
            continue;
        }
        if let Some((v, k)) = message_variant_at(view, j) {
            if let Some(n) = current.take() {
                out.push((n, v));
            }
            j = k;
            continue;
        }
        j += 1;
    }
    out
}

/// A lone lowercase binding or `_` in front of `=>` (the catch-all arm).
fn has_wildcard_arm(view: &TreeView<'_>, lo: usize, hi: usize) -> bool {
    let hi = hi.min(view.toks.len());
    for j in lo..hi {
        if view.toks[j].kind == TokKind::Ident
            && punct(view, j + 1) == Some(b'=')
            && punct(view, j + 2) == Some(b'>')
        {
            let w = view.text(j);
            let lowercase = w == "_" || w.chars().next().is_some_and(|c| c.is_ascii_lowercase());
            // Not the struct-pattern field binding `{ ack } =>` — those
            // are preceded by `{` or `,` inside a subpattern; a true
            // wildcard arm is preceded by `,`/`{` at arm level too, so
            // distinguish by what came before: a `}`/`)` means the arm
            // had a pattern already.
            let prev_ok = j == lo
                || matches!(punct(view, j - 1), Some(b',') | Some(b'{'))
                    && !prev_is_subpattern(view, lo, j);
            if lowercase && prev_ok {
                return true;
            }
        }
    }
    false
}

/// True when the ident at `j` sits inside a `Message::V { .. }`
/// sub-pattern rather than at arm level: scan back for an unmatched `{`
/// that is preceded by an ident (a struct pattern/literal).
fn prev_is_subpattern(view: &TreeView<'_>, lo: usize, j: usize) -> bool {
    let mut depth = 0i32;
    let mut k = j;
    while k > lo {
        k -= 1;
        match punct(view, k) {
            Some(b'}') => depth += 1,
            Some(b'{') => {
                if depth == 0 {
                    // Opening brace: struct pattern if an ident hugs it.
                    return k > 0 && view.toks[k - 1].kind == TokKind::Ident;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    false
}

/// `Message :: V` starting at `j`; returns the variant and the index
/// past it.
fn message_variant_at(view: &TreeView<'_>, j: usize) -> Option<(String, usize)> {
    if view.toks[j].kind == TokKind::Ident
        && view.text(j) == "Message"
        && punct(view, j + 1) == Some(b':')
        && punct(view, j + 2) == Some(b':')
        && view.toks.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident)
    {
        Some((view.text(j + 3).to_string(), j + 4))
    } else {
        None
    }
}

fn diag(f: &PassFile, line: usize, message: &str) -> PassDiag {
    PassDiag {
        file: f.rel.clone(),
        line,
        offset: 0,
        rule: "wire-compat",
        message: message.to_string(),
    }
}
