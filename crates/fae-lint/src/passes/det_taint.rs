//! The determinism-taint pass — a thin per-file adapter over the
//! engine in [`crate::flow`].
//!
//! Replaces PR 5's lexical `wall-clock`/`ambient-rng`/`hash-container`
//! matches: instead of flagging every *mention* of a nondeterministic
//! API, it flags only flows where the nondeterministic value reaches
//! digest-relevant state (a `pub fn` return, a `self` write, a
//! parameter mutation). Pure lookups into a `HashMap`, or a clock read
//! whose value never escapes, are no longer violations — which is what
//! lets the det-5 crates use `HashMap` for hot-path lookups without
//! pragma noise (see DESIGN.md §16).

use crate::flow;
use crate::tree::{items, TreeView};

/// Diagnostics for one file: `(line, offset, rule, message)` tuples in
/// source order. `det` gates reporting to the det-5 crates.
pub fn run(source: &str, det: bool) -> Vec<(usize, usize, &'static str, String)> {
    let view = TreeView::new(source);
    let it = items(&view);
    flow::det_taint_file(&view, &it, det)
        .into_iter()
        .map(|d| (d.line, d.offset, d.rule, d.message))
        .collect()
}
