//! The flow-aware semantic passes (PR 10).
//!
//! Each pass works on parsed [`crate::tree::TreeView`]s rather than
//! scrubbed lines. Per-file passes (determinism-taint, in
//! [`det_taint`]) run inside `lint_source`; workspace passes
//! (phase-balance, lock-order, wire-compat) need cross-file context and
//! run once per lint invocation, with their findings routed through the
//! same pragma/test-region suppression as every other rule.

pub mod det_taint;
pub mod lock_order;
pub mod phase_balance;
pub mod wire_compat;

use std::path::PathBuf;

/// A finding from a workspace pass, before pragma suppression.
#[derive(Debug, Clone)]
pub struct PassDiag {
    /// Workspace-relative file the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Byte offset in that file (for `#[cfg(test)]` exemption).
    pub offset: usize,
    /// Rule id.
    pub rule: &'static str,
    /// Explanation.
    pub message: String,
}

/// One source file handed to the workspace passes.
pub struct PassFile {
    /// Workspace-relative path.
    pub rel: PathBuf,
    /// File contents.
    pub source: String,
    /// How the file is classified (determinism scope, net scope, ...).
    pub class: crate::FileClass,
}
