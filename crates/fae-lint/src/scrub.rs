//! Source scrubbing: a byte-for-byte copy of a Rust source file with
//! comments and literal bodies blanked out, so the rule matchers never
//! fire on text inside a string, a char literal or a comment.
//!
//! The scrubber also extracts `// fae-lint: allow(...)` pragmas from
//! line comments (the only place they are recognised) before blanking
//! them. Newlines are preserved everywhere, so byte offsets and line
//! numbers in the scrubbed text match the original exactly.

/// A parsed `fae-lint: allow(<rules>, reason = "...")` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// Rule ids the pragma suppresses.
    pub rules: Vec<String>,
    /// The mandatory human-readable justification.
    pub reason: String,
}

/// A pragma that contained `fae-lint:` but did not parse.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// 1-based line of the malformed pragma.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// Scrubber output: blanked text plus the pragmas found along the way.
pub struct Scrubbed {
    /// Same byte length as the input; comments and literal bodies are
    /// spaces, newlines are kept.
    pub text: String,
    /// Well-formed pragmas, in file order.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas (reported as `bad-pragma` diagnostics).
    pub errors: Vec<PragmaError>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blanks comments and literal bodies out of `source`.
pub fn scrub(source: &str) -> Scrubbed {
    let src = source.as_bytes();
    let mut out = vec![0u8; src.len()];
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Copies src[i] to out[i] and advances, tracking line numbers.
    macro_rules! copy {
        () => {{
            out[i] = src[i];
            if src[i] == b'\n' {
                line += 1;
            }
            i += 1;
        }};
    }
    // Blanks src[i] (newlines survive so offsets stay aligned).
    macro_rules! blank {
        () => {{
            out[i] = if src[i] == b'\n' { b'\n' } else { b' ' };
            if src[i] == b'\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < src.len() {
        let b = src[i];
        let prev_ident = i > 0 && is_ident(src[i - 1]);
        if b == b'/' && i + 1 < src.len() && src[i + 1] == b'/' {
            // Line comment: capture the text for pragma parsing, then blank.
            let start = i;
            let mut end = i;
            while end < src.len() && src[end] != b'\n' {
                end += 1;
            }
            let text = &source[start..end];
            // Pragmas live in plain `//` comments only: doc comments
            // (`///`, `//!`) may legitimately *describe* the syntax.
            let is_doc = matches!(src.get(start + 2), Some(&b'/') | Some(&b'!'));
            if is_doc {
                while i < end {
                    blank!();
                }
                continue;
            }
            if let Some(found) = parse_pragma(text, line) {
                match found {
                    Ok(p) => pragmas.push(p),
                    Err(e) => errors.push(e),
                }
            }
            while i < end {
                blank!();
            }
        } else if b == b'/' && i + 1 < src.len() && src[i + 1] == b'*' {
            // Block comment, possibly nested.
            let mut depth = 0usize;
            loop {
                if i >= src.len() {
                    break;
                }
                if src[i] == b'/' && i + 1 < src.len() && src[i + 1] == b'*' {
                    depth += 1;
                    blank!();
                    blank!();
                } else if src[i] == b'*' && i + 1 < src.len() && src[i + 1] == b'/' {
                    depth -= 1;
                    blank!();
                    blank!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank!();
                }
            }
        } else if b == b'"' {
            // Ordinary (or byte) string literal: keep the quotes, blank the body.
            copy!();
            while i < src.len() {
                if src[i] == b'\\' && i + 1 < src.len() {
                    blank!();
                    blank!();
                } else if src[i] == b'"' {
                    copy!();
                    break;
                } else {
                    blank!();
                }
            }
        } else if (b == b'r' && !prev_ident) && raw_string_hashes(&src[i + 1..]).is_some() {
            // Raw string r"..." / r#"..."# — no escapes inside.
            let hashes = raw_string_hashes(&src[i + 1..]).unwrap_or(0);
            copy!(); // r
            for _ in 0..hashes {
                copy!(); // #
            }
            copy!(); // opening quote
            let closer_len = hashes + 1;
            while i < src.len() {
                if src[i] == b'"' && src[i + 1..].iter().take(hashes).all(|&c| c == b'#') {
                    for _ in 0..closer_len.min(src.len() - i) {
                        copy!();
                    }
                    break;
                }
                blank!();
            }
        } else if b == b'\'' {
            // Char literal or lifetime. A lifetime is `'` + ident with no
            // closing quote right after a single char.
            let next = src.get(i + 1).copied().unwrap_or(0);
            let after = src.get(i + 2).copied().unwrap_or(0);
            if next == b'\\' || (!is_ident(next) && next != b'\'') || after == b'\'' {
                // Char literal: blank until the closing quote (bounded —
                // escapes like '\u{1F600}' stay under 12 bytes).
                copy!();
                let mut n = 0;
                while i < src.len() && n < 12 {
                    if src[i] == b'\\' && i + 1 < src.len() {
                        blank!();
                        blank!();
                        n += 2;
                    } else if src[i] == b'\'' {
                        copy!();
                        break;
                    } else {
                        blank!();
                        n += 1;
                    }
                }
            } else {
                // Lifetime: keep the tick, continue as code.
                copy!();
            }
        } else {
            copy!();
        }
    }

    // The scrubber only ever writes ASCII into blanked spans and copies
    // original bytes elsewhere, but a multi-byte char split across a
    // copy/blank boundary could in principle leave invalid UTF-8; fall
    // back to a lossy conversion rather than failing the whole file.
    let text = String::from_utf8(out)
        .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
    Scrubbed { text, pragmas, errors }
}

/// If `rest` begins a raw-string opener (`#*"`), returns the hash count.
fn raw_string_hashes(rest: &[u8]) -> Option<usize> {
    let mut n = 0;
    while n < rest.len() && rest[n] == b'#' {
        n += 1;
    }
    if rest.get(n) == Some(&b'"') {
        Some(n)
    } else {
        None
    }
}

/// Parses a pragma out of a line-comment's text, if it claims to be one.
///
/// Returns `None` for ordinary comments, `Some(Ok(_))` for a well-formed
/// pragma and `Some(Err(_))` when the comment says `fae-lint:` but the
/// rest does not match `allow(<rule>[, <rule>...], reason = "...")`.
fn parse_pragma(comment: &str, line: usize) -> Option<Result<Pragma, PragmaError>> {
    let idx = comment.find("fae-lint:")?;
    let rest = comment[idx + "fae-lint:".len()..].trim();
    let err = |message: &str| Some(Err(PragmaError { line, message: message.to_string() }));
    let Some(inner) = rest.strip_prefix("allow(") else {
        return err("expected `allow(<rule>[, <rule>...], reason = \"...\")`");
    };
    let Some(inner) = inner.trim_end().strip_suffix(')') else {
        return err("missing closing `)`");
    };
    // The reason clause is last and its text may contain commas, so split
    // on the `reason` keyword rather than naively on `,`.
    let Some(reason_at) = inner.find("reason") else {
        return err("missing `reason = \"...\"` clause");
    };
    let rule_part = inner[..reason_at].trim().trim_end_matches(',').trim();
    let reason_part = inner[reason_at + "reason".len()..].trim();
    let Some(reason_part) = reason_part.strip_prefix('=') else {
        return err("expected `=` after `reason`");
    };
    let reason_part = reason_part.trim();
    let reason = reason_part.strip_prefix('"').and_then(|r| r.strip_suffix('"'));
    let Some(reason) = reason else {
        return err("reason must be a quoted string");
    };
    if reason.trim().is_empty() {
        return err("reason must not be empty");
    }
    if rule_part.is_empty() {
        return err("at least one rule id is required");
    }
    let rules: Vec<String> = rule_part.split(',').map(|r| r.trim().to_string()).collect();
    if rules.iter().any(|r| r.is_empty() || !r.bytes().all(|b| is_ident(b) || b == b'-')) {
        return err("rule ids must be kebab-case identifiers");
    }
    Some(Ok(Pragma { line, rules, reason: reason.to_string() }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments() {
        let s = scrub("let x = \"HashMap\"; // HashMap\nlet y = 1;");
        assert!(!s.text.contains("HashMap"));
        assert!(s.text.contains("let x ="));
        assert!(s.text.contains("let y = 1;"));
        assert_eq!(s.text.len(), "let x = \"HashMap\"; // HashMap\nlet y = 1;".len());
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "let r = r#\"unwrap()\"#; let c = '\\n'; fn f<'a>(x: &'a str) {}";
        let s = scrub(src);
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.contains("fn f<'a>(x: &'a str)"));
        assert_eq!(s.text.len(), src.len());
    }

    #[test]
    fn nested_block_comment() {
        let s = scrub("a /* x /* panic!() */ y */ b");
        assert!(!s.text.contains("panic"));
        assert!(s.text.starts_with('a'));
        assert!(s.text.ends_with('b'));
    }

    #[test]
    fn pragma_parses() {
        let s = scrub("// fae-lint: allow(no-panic, reason = \"checked, above, twice\")\nx");
        assert_eq!(s.pragmas.len(), 1);
        assert_eq!(s.pragmas[0].rules, vec!["no-panic"]);
        assert_eq!(s.pragmas[0].reason, "checked, above, twice");
        assert!(s.errors.is_empty());
    }

    #[test]
    fn pragma_multi_rule() {
        let s = scrub("// fae-lint: allow(wall-clock, ambient-rng, reason = \"bench only\")\n");
        assert_eq!(s.pragmas[0].rules, vec!["wall-clock", "ambient-rng"]);
    }

    #[test]
    fn malformed_pragma_is_an_error() {
        let s = scrub("// fae-lint: allow(no-panic)\n");
        assert!(s.pragmas.is_empty());
        assert_eq!(s.errors.len(), 1);
    }
}
