//! Per-function flow summaries and the determinism-taint engine.
//!
//! Tracks values produced by nondeterministic *sources* — wall clock,
//! ambient RNG, `HashMap`/`HashSet` iteration order, thread ids, raw
//! addresses — through local assignments, control-flow headers and
//! same-file calls, and reports only when the taint reaches a *sink*
//! that can affect digest-relevant state: a `pub fn` return value, a
//! write through `self`, or a mutation of a parameter. A wall-clock
//! read whose value never escapes the function is fine; the lexical
//! rules of PR 5 could not make that distinction.
//!
//! Taint is *cleansed* for the hash-iteration kind when the iteration
//! is order-insensitive in the same statement (`collect` into a
//! `BTreeMap`/`BTreeSet`, `.count()`, `.len()`, `.min()`, `.max()`,
//! `.all()`, `.any()`, `.is_empty()`) or when the assigned binding is
//! `.sort*`ed anywhere in the function. Soundness caveats of this
//! non-type-checked analysis are documented in DESIGN.md §16.

use std::collections::{BTreeMap, BTreeSet};

use crate::tokens::TokKind;
use crate::tree::{FnItem, Items, Node, TreeView};

/// The kinds of nondeterminism a source can introduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Reading the wall clock (`Instant::now`, `SystemTime::now`).
    WallClock,
    /// Ambient randomness (`thread_rng`, `OsRng`, `from_entropy`).
    AmbientRng,
    /// Iterating a `HashMap`/`HashSet` in its arbitrary order.
    HashIter,
    /// Thread identity (`thread::current`).
    ThreadId,
    /// Raw addresses (`.as_ptr()`, `addr_of!`).
    Address,
}

impl SourceKind {
    /// The rule id a taint of this kind reports under.
    pub fn rule(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock",
            SourceKind::AmbientRng => "ambient-rng",
            SourceKind::HashIter => "hash-container",
            SourceKind::ThreadId | SourceKind::Address => "det-taint",
        }
    }

    fn describe(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock read",
            SourceKind::AmbientRng => "ambient RNG",
            SourceKind::HashIter => "hash-order iteration",
            SourceKind::ThreadId => "thread id",
            SourceKind::Address => "raw address",
        }
    }
}

/// Where a taint was born.
#[derive(Clone, Debug)]
pub struct SourceEvent {
    /// What kind of nondeterminism.
    pub kind: SourceKind,
    /// 1-based line of the source expression.
    pub line: usize,
    /// Byte offset of the source token (for test-region exemption).
    pub offset: usize,
    /// The source expression text, for the message.
    pub what: String,
}

/// One determinism-taint finding.
#[derive(Clone, Debug)]
pub struct TaintDiag {
    /// 1-based line of the *source* (pragma there suppresses the flow).
    pub line: usize,
    /// Byte offset of the source token.
    pub offset: usize,
    /// Rule id (`wall-clock`, `ambient-rng`, `hash-container`,
    /// `det-taint`).
    pub rule: &'static str,
    /// Human-readable flow description.
    pub message: String,
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Order-insensitive consumers: iterating a hash container into one of
/// these cannot leak the iteration order.
const CLEANSE_METHODS: &[&str] = &["count", "len", "min", "max", "all", "any", "is_empty"];

fn is_hash_name(name: &str) -> bool {
    name.contains("HashMap") || name.contains("HashSet")
}

struct Ctx<'a> {
    view: &'a TreeView<'a>,
    /// Local name → resolved full path (from `use` items).
    resolve: BTreeMap<&'a str, &'a str>,
    /// Struct fields (per owner) whose type mentions a hash container.
    hash_fields: BTreeSet<(String, String)>,
    /// Function name → the source event its return value carries.
    returns_taint: BTreeMap<String, SourceEvent>,
}

impl<'a> Ctx<'a> {
    fn resolved<'b>(&'b self, name: &'b str) -> &'b str {
        self.resolve.get(name).copied().unwrap_or(name)
    }
}

struct FnState {
    /// Tainted binding → originating event.
    taint: BTreeMap<String, SourceEvent>,
    /// Hash-typed local bindings.
    hash_vars: BTreeSet<String>,
    /// Bindings that get `.sort*`ed somewhere in this fn.
    sorted_vars: BTreeSet<String>,
    /// Parameter names (including `self`).
    params: BTreeSet<String>,
    /// The event the fn's return value carries, if any.
    returns: Option<SourceEvent>,
    /// Findings (line, rule) → diag, for dedup.
    diags: BTreeMap<(usize, &'static str), TaintDiag>,
}

impl FnState {
    fn sink(&mut self, event: &SourceEvent, sink: &str) {
        let key = (event.line, event.kind.rule());
        self.diags.entry(key).or_insert_with(|| TaintDiag {
            line: event.line,
            offset: event.offset,
            rule: event.kind.rule(),
            message: format!(
                "{} `{}` flows into {sink}; route it through the seeded/deterministic \
                 path or pragma the flow at its source",
                event.kind.describe(),
                event.what
            ),
        });
    }
}

/// Runs the determinism-taint pass over one file.
///
/// `det` selects whether sink findings are reported (the det-5 crates);
/// summaries are computed either way so a det file calling into its own
/// helpers still sees flows.
pub fn det_taint_file(view: &TreeView<'_>, items: &Items, det: bool) -> Vec<TaintDiag> {
    let mut resolve = BTreeMap::new();
    for u in &items.uses {
        resolve.insert(u.name.as_str(), u.path.as_str());
    }
    let mut hash_fields = BTreeSet::new();
    for f in &items.fields {
        let hash_typed =
            f.ty.split_whitespace()
                .any(|w| is_hash_name(w) || is_hash_name(resolve.get(w).copied().unwrap_or("")));
        if hash_typed {
            hash_fields.insert((f.strukt.clone(), f.field.clone()));
        }
    }
    let mut ctx = Ctx { view, resolve, hash_fields, returns_taint: BTreeMap::new() };

    // Fixpoint over same-file call summaries: a helper whose return is
    // tainted makes its callers tainted too. Bounded by fn count.
    for _ in 0..items.fns.len().max(1) {
        let mut changed = false;
        for f in &items.fns {
            let st = analyze_fn(&ctx, items, f);
            if let Some(ev) = st.returns {
                if !ctx.returns_taint.contains_key(&f.name) {
                    ctx.returns_taint.insert(f.name.clone(), ev);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out: BTreeMap<(usize, &'static str), TaintDiag> = BTreeMap::new();
    if det {
        for f in &items.fns {
            let st = analyze_fn(&ctx, items, f);
            for (k, d) in st.diags {
                out.entry(k).or_insert(d);
            }
        }
    }
    out.into_values().collect()
}

/// Finds the brace group whose opening token index is `open`.
fn find_group(nodes: &[Node], open: usize) -> Option<&[Node]> {
    for n in nodes {
        if let Node::Group { open: o, children, .. } = n {
            if *o == open {
                return Some(children);
            }
            if let Some(found) = find_group(children, open) {
                return Some(found);
            }
        }
    }
    None
}

fn analyze_fn(ctx: &Ctx<'_>, items: &Items, f: &FnItem) -> FnState {
    let mut st = FnState {
        taint: BTreeMap::new(),
        hash_vars: BTreeSet::new(),
        sorted_vars: BTreeSet::new(),
        params: f.params.iter().cloned().collect(),
        returns: None,
        diags: BTreeMap::new(),
    };
    if f.body == (0, 0) || f.body.0 == 0 {
        return st;
    }
    let Some(body) = find_group(&ctx.view.nodes, f.body.0 - 1) else {
        return st;
    };
    // Pre-scan: bindings that get sorted anywhere in the fn cleanse
    // hash-iteration taint (fn-wide, order-insensitive approximation).
    let flat = crate::tree::flatten(body);
    for w in flat.windows(3) {
        if ctx.view.is_punct(w[1], b'.')
            && ctx.view.toks[w[0]].kind == TokKind::Ident
            && ctx.view.toks[w[2]].kind == TokKind::Ident
            && ctx.view.text(w[2]).starts_with("sort")
        {
            st.sorted_vars.insert(ctx.view.text(w[0]).to_string());
        }
    }
    // Two rounds so a taint introduced late in the body reaches uses
    // earlier in a loop.
    for _ in 0..2 {
        walk_block(ctx, items, f, body, None, true, &mut st);
    }
    st
}

/// Splits `nodes` into statements at depth-0 `;`/`,` and after brace
/// groups not followed by `else`, then processes each.
fn walk_block(
    ctx: &Ctx<'_>,
    items: &Items,
    f: &FnItem,
    nodes: &[Node],
    control: Option<&SourceEvent>,
    is_fn_body: bool,
    st: &mut FnState,
) {
    let view = ctx.view;
    let mut start = 0usize;
    let mut i = 0usize;
    // Angle-bracket depth, so the commas of `let m: HashMap<u32, u32>`
    // do not split the statement (a `,` separator only matters for
    // match arms, which sit at angle depth 0). `<<`/`->`/`=>` are
    // excluded by adjacency.
    let mut angle = 0i32;
    while i < nodes.len() {
        match &nodes[i] {
            Node::Leaf(k) => {
                let b = if view.toks[*k].kind == TokKind::Punct {
                    view.source.as_bytes()[view.toks[*k].start]
                } else {
                    0
                };
                if b == b'<' {
                    let next_shift = matches!(
                        nodes.get(i + 1),
                        Some(Node::Leaf(j)) if view.is_punct(*j, b'<')
                            && view.toks[*j].start == view.toks[*k].end
                    );
                    let prev_shift = i > 0
                        && matches!(
                            nodes.get(i - 1),
                            Some(Node::Leaf(j)) if view.is_punct(*j, b'<')
                                && view.toks[*j].end == view.toks[*k].start
                        );
                    if !next_shift && !prev_shift {
                        angle += 1;
                    }
                } else if b == b'>' {
                    let at = view.toks[*k].start;
                    let prev = if at == 0 { b' ' } else { view.source.as_bytes()[at - 1] };
                    if prev != b'-' && prev != b'=' && angle > 0 {
                        angle -= 1;
                    }
                }
                if b == b';' || (b == b',' && angle <= 0) {
                    if i > start {
                        process_stmt(ctx, items, f, &nodes[start..i], control, false, st);
                    }
                    start = i + 1;
                    angle = 0;
                }
                i += 1;
            }
            Node::Group { delim, .. } => {
                if *delim == b'{' {
                    // End the statement after the block unless an
                    // `else` continues it.
                    let next_is_else = matches!(
                        nodes.get(i + 1),
                        Some(Node::Leaf(k)) if ctx.view.is_ident(*k, "else")
                    );
                    if !next_is_else {
                        process_stmt(ctx, items, f, &nodes[start..=i], control, false, st);
                        start = i + 1;
                        angle = 0;
                        i += 1;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if start < nodes.len() {
        // Trailing segment without `;`: the tail expression.
        process_stmt(ctx, items, f, &nodes[start..], control, is_fn_body, st);
    }
}

/// Token indices of the leaves of `nodes`, groups flattened.
fn flat(nodes: &[Node]) -> Vec<usize> {
    crate::tree::flatten(nodes)
}

fn process_stmt(
    ctx: &Ctx<'_>,
    items: &Items,
    f: &FnItem,
    stmt: &[Node],
    control: Option<&SourceEvent>,
    is_tail: bool,
    st: &mut FnState,
) {
    if stmt.is_empty() {
        return;
    }
    let view = ctx.view;
    let head = match stmt.first() {
        Some(Node::Leaf(k)) => Some(*k),
        _ => None,
    };

    // Control statements: evaluate the header, recurse into blocks with
    // the header's taint as implicit control taint.
    if let Some(h) = head {
        let word = if view.toks[h].kind == TokKind::Ident { view.text(h) } else { "" };
        if matches!(word, "if" | "while" | "for" | "match" | "loop" | "else" | "unsafe") {
            let header: Vec<&Node> =
                stmt.iter().take_while(|n| !matches!(n, Node::Group { delim: b'{', .. })).collect();
            let header_nodes: Vec<usize> = {
                let mut v = Vec::new();
                for n in &header {
                    flat_into(n, &mut v);
                }
                v
            };
            let header_taint = eval_taint(ctx, st, &header_nodes, word == "for");
            // `for PAT in iter` / `if let PAT = expr`: bind pattern
            // idents from the header's taint.
            if let Some(ev) = &header_taint {
                let binds = pattern_binds(ctx, &header_nodes, word);
                for b in binds {
                    if !(ev.kind == SourceKind::HashIter && st.sorted_vars.contains(&b)) {
                        st.taint.insert(b, ev.clone());
                    }
                }
            }
            let inner_control = header_taint.as_ref().or(control);
            for n in stmt {
                if let Node::Group { delim: b'{', children, .. } = n {
                    walk_block(ctx, items, f, children, inner_control, false, st);
                }
            }
            // A tainted tail `if`/`match` expression taints the return.
            if is_tail {
                if let Some(ev) = header_taint.or_else(|| control.cloned()) {
                    note_return(ctx, f, &ev, st);
                }
            }
            return;
        }
        if word == "return" {
            let rest: Vec<usize> = {
                let mut v = Vec::new();
                for n in &stmt[1..] {
                    flat_into(n, &mut v);
                }
                v
            };
            if !rest.is_empty() {
                let ev = eval_taint(ctx, st, &rest, false).or_else(|| control.cloned());
                if let Some(ev) = ev {
                    note_return(ctx, f, &ev, st);
                }
            }
            return;
        }
        if word == "let" {
            let toks = flat(stmt);
            let (lhs, rhs) = split_assign(ctx, &toks);
            let binds = lhs_idents(ctx, &lhs);
            let annotated_hash = lhs.iter().any(|&k| {
                view.toks[k].kind == TokKind::Ident && is_hash_name(ctx.resolved(view.text(k)))
            });
            let ctor_hash = rhs.iter().any(|&k| {
                view.toks[k].kind == TokKind::Ident && is_hash_name(ctx.resolved(view.text(k)))
            });
            if annotated_hash || ctor_hash {
                for b in &binds {
                    st.hash_vars.insert(b.clone());
                }
            }
            let ev = eval_taint(ctx, st, &rhs, false).or_else(|| control.cloned());
            match ev {
                Some(ev) => {
                    if !statement_cleanses(ctx, &toks, &ev) {
                        for b in binds {
                            if !(ev.kind == SourceKind::HashIter && st.sorted_vars.contains(&b)) {
                                st.taint.insert(b, ev.clone());
                            }
                        }
                    }
                }
                None => {
                    // Reassignment to an untainted value clears taint.
                    for b in binds {
                        st.taint.remove(&b);
                    }
                }
            }
            return;
        }
    }

    let toks = flat(stmt);
    let (lhs, rhs) = split_assign(ctx, &toks);
    if !rhs.is_empty() && lhs != toks {
        // Assignment (plain or compound).
        let ev = eval_taint(ctx, st, &rhs, false).or_else(|| control.cloned());
        let binds = lhs_idents(ctx, &lhs);
        let self_write = binds.first().map(String::as_str) == Some("self");
        let param_write = binds.first().is_some_and(|b| st.params.contains(b) && b != "self");
        if let Some(ev) = ev {
            if !statement_cleanses(ctx, &toks, &ev) {
                if self_write {
                    st.sink(
                        &ev,
                        &format!(
                            "state write `self.{}`",
                            binds.get(1).cloned().unwrap_or_default()
                        ),
                    );
                } else if param_write {
                    st.sink(&ev, &format!("mutation of parameter `{}`", binds[0]));
                } else {
                    for b in binds {
                        if !(ev.kind == SourceKind::HashIter && st.sorted_vars.contains(&b)) {
                            st.taint.insert(b, ev.clone());
                        }
                    }
                }
            }
        } else if !self_write && !param_write {
            for b in binds {
                st.taint.remove(&b);
            }
        }
        return;
    }

    // Expression statement or tail expression.
    let ev = eval_taint(ctx, st, &toks, false).or_else(|| control.cloned());
    if let Some(ev) = ev {
        if statement_cleanses(ctx, &toks, &ev) {
            return;
        }
        if is_tail {
            note_return(ctx, f, &ev, st);
            return;
        }
        // A call through `self` or a parameter with tainted arguments
        // mutates digest-relevant state.
        let root = toks.first().and_then(|&k| {
            if ctx.view.toks[k].kind == TokKind::Ident {
                Some(ctx.view.text(k).to_string())
            } else {
                None
            }
        });
        let has_call = stmt.iter().any(contains_paren_group);
        if let Some(root) = root {
            if has_call && (root == "self" || st.params.contains(&root)) {
                let target = if root == "self" {
                    let field = toks
                        .get(2)
                        .filter(|&&k| ctx.view.toks[k].kind == TokKind::Ident)
                        .map(|&k| ctx.view.text(k))
                        .unwrap_or("");
                    format!("state write `self.{field}`")
                } else {
                    format!("mutation of parameter `{root}`")
                };
                st.sink(&ev, &target);
            }
        }
    }
}

fn contains_paren_group(n: &Node) -> bool {
    match n {
        Node::Leaf(_) => false,
        Node::Group { delim, children, .. } => {
            *delim == b'(' || children.iter().any(contains_paren_group)
        }
    }
}

fn note_return(ctx: &Ctx<'_>, f: &FnItem, ev: &SourceEvent, st: &mut FnState) {
    if st.returns.is_none() {
        st.returns = Some(ev.clone());
    }
    let _ = ctx;
    if f.is_pub {
        st.sink(ev, &format!("the return value of pub fn `{}`", f.name));
    }
}

fn flat_into(n: &Node, out: &mut Vec<usize>) {
    match n {
        Node::Leaf(k) => out.push(*k),
        Node::Group { open, close, children, .. } => {
            out.push(*open);
            for c in children {
                flat_into(c, out);
            }
            out.push(*close);
        }
    }
}

/// Splits flattened statement tokens at the top-level assignment `=`.
/// Returns `(lhs, rhs)`; when there is no assignment, lhs is the whole
/// statement and rhs is empty. "Top-level" means paren/brace/bracket
/// depth 0 within the statement.
fn split_assign(ctx: &Ctx<'_>, toks: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let view = ctx.view;
    let mut depth = 0i32;
    for (i, &k) in toks.iter().enumerate() {
        let b = if view.toks[k].kind == TokKind::Punct {
            view.source.as_bytes()[view.toks[k].start]
        } else {
            0
        };
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 => {
                let prev = i.checked_sub(1).map(|j| punct_byte_of(view, toks[j])).unwrap_or(0);
                let next = toks.get(i + 1).map(|&j| punct_byte_of(view, j)).unwrap_or(0);
                // Adjacency matters: `==`, `!=`, `<=`, `>=`, `=>` are
                // comparisons/arrows, not assignments.
                let prev_adj = i > 0 && view.toks[toks[i - 1]].end == view.toks[k].start;
                let next_adj =
                    toks.get(i + 1).is_some_and(|&j| view.toks[j].start == view.toks[k].end);
                if (next == b'=' || next == b'>') && next_adj {
                    continue;
                }
                if matches!(prev, b'=' | b'!' | b'<' | b'>') && prev_adj {
                    continue;
                }
                // Compound assignment (`+=` etc.): the lhs is also read,
                // but for taint purposes it is still the write target.
                return (toks[..i].to_vec(), toks[i + 1..].to_vec());
            }
            _ => {}
        }
    }
    (toks.to_vec(), Vec::new())
}

fn punct_byte_of(view: &TreeView<'_>, k: usize) -> u8 {
    if view.toks[k].kind == TokKind::Punct {
        view.source.as_bytes()[view.toks[k].start]
    } else {
        0
    }
}

/// The identifiers written by an assignment lhs (pattern idents for
/// `let`, path roots for field writes). Everything after the first
/// single `:` at paren depth 0 is a type annotation and is ignored.
fn lhs_idents(ctx: &Ctx<'_>, lhs: &[usize]) -> Vec<String> {
    let view = ctx.view;
    let mut out = Vec::new();
    let mut depth = 0i32;
    for (i, &k) in lhs.iter().enumerate() {
        let b = punct_byte_of(view, k);
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b':' if depth == 0 => {
                let next_adj = lhs.get(i + 1).is_some_and(|&j| {
                    punct_byte_of(view, j) == b':' && view.toks[j].start == view.toks[k].end
                });
                let prev_adj = i > 0
                    && punct_byte_of(view, lhs[i - 1]) == b':'
                    && view.toks[lhs[i - 1]].end == view.toks[k].start;
                if !next_adj && !prev_adj {
                    break;
                }
            }
            _ => {}
        }
        if view.toks[k].kind == TokKind::Ident {
            let w = view.text(k);
            if !matches!(w, "let" | "mut" | "ref" | "box") {
                out.push(w.to_string());
            }
        }
    }
    out
}

/// Pattern identifiers bound by a control header (`for PAT in ..`,
/// `if let PAT = ..`, `while let PAT = ..`).
fn pattern_binds(ctx: &Ctx<'_>, header: &[usize], word: &str) -> Vec<String> {
    let view = ctx.view;
    let mut out = Vec::new();
    let mut active = false;
    for &k in header {
        if view.toks[k].kind == TokKind::Ident {
            let w = view.text(k);
            if (word == "for" && w == "for") || w == "let" {
                active = true;
                continue;
            }
            if w == "in" {
                break;
            }
            if active && w.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                out.push(w.to_string());
            }
        }
        if punct_byte_of(view, k) == b'=' && word != "for" {
            break;
        }
    }
    out
}

/// Does this statement consume the taint in an order-insensitive way?
/// Only hash-iteration taint is cleansable; clock/RNG/id taints stay.
fn statement_cleanses(ctx: &Ctx<'_>, toks: &[usize], ev: &SourceEvent) -> bool {
    if ev.kind != SourceKind::HashIter {
        return false;
    }
    let view = ctx.view;
    for (i, &k) in toks.iter().enumerate() {
        if view.toks[k].kind != TokKind::Ident {
            continue;
        }
        let w = view.text(k);
        let r = ctx.resolved(w);
        if r.contains("BTreeMap") || r.contains("BTreeSet") {
            return true;
        }
        if CLEANSE_METHODS.contains(&w) {
            // Must be a call: `.count()`, not a binding named `count`.
            let prev_dot = i > 0 && punct_byte_of(view, toks[i - 1]) == b'.';
            let next_paren = toks.get(i + 1).is_some_and(|&j| punct_byte_of(view, j) == b'(');
            if prev_dot && next_paren {
                return true;
            }
        }
    }
    false
}

/// Scans `toks` for the leftmost taint: a direct source, a tainted
/// binding, a hash-container iteration, or a call to a same-file fn
/// whose summary says its return is tainted. `iter_context` marks a
/// `for` header, where a bare hash binding is itself an iteration.
fn eval_taint(
    ctx: &Ctx<'_>,
    st: &FnState,
    toks: &[usize],
    iter_context: bool,
) -> Option<SourceEvent> {
    let view = ctx.view;
    let event = |kind: SourceKind, k: usize, what: String| SourceEvent {
        kind,
        line: view.line(k),
        offset: view.toks[k].start,
        what,
    };
    let ident = |k: usize| view.toks[k].kind == TokKind::Ident;
    for (i, &k) in toks.iter().enumerate() {
        if !ident(k) {
            continue;
        }
        let w = view.text(k);
        let r = ctx.resolved(w);
        let next_colons = toks.get(i + 1).is_some_and(|&j| punct_byte_of(view, j) == b':')
            && toks.get(i + 2).is_some_and(|&j| punct_byte_of(view, j) == b':');
        let after_path = toks.get(i + 3).filter(|&&j| ident(j)).map(|&j| view.text(j));

        // Wall clock: `Instant::now`, `SystemTime::now`.
        if (r.ends_with("Instant") || r.ends_with("SystemTime"))
            && next_colons
            && after_path == Some("now")
        {
            return Some(event(SourceKind::WallClock, k, format!("{w}::now()")));
        }
        // Ambient RNG.
        if matches!(w, "thread_rng" | "from_entropy")
            || r.ends_with("OsRng")
            || r.ends_with("thread_rng")
        {
            return Some(event(SourceKind::AmbientRng, k, w.to_string()));
        }
        // Thread identity: `thread::current`.
        if (w == "thread" || r.ends_with("::thread"))
            && next_colons
            && after_path == Some("current")
        {
            return Some(event(SourceKind::ThreadId, k, "thread::current()".to_string()));
        }
        // Raw addresses.
        if matches!(w, "as_ptr" | "as_mut_ptr") && i > 0 && punct_byte_of(view, toks[i - 1]) == b'.'
        {
            return Some(event(SourceKind::Address, k, format!(".{w}()")));
        }
        if matches!(w, "addr_of" | "addr_of_mut") {
            return Some(event(SourceKind::Address, k, format!("{w}!")));
        }

        // Hash iteration: `m.iter()` on a hash binding or `self.f.iter()`
        // on a hash field — or the bare binding in a `for .. in` header.
        let is_hash_root = st.hash_vars.contains(w)
            || (w == "self"
                && toks.get(i + 2).is_some_and(|&j| {
                    ident(j) && ctx.hash_fields.iter().any(|(_, field)| field == view.text(j))
                }));
        if is_hash_root {
            let label = if w == "self" {
                format!("self.{}", toks.get(i + 2).map(|&j| view.text(j)).unwrap_or(""))
            } else {
                w.to_string()
            };
            let after = if w == "self" { i + 3 } else { i + 1 };
            let method = toks
                .get(after)
                .filter(|&&j| punct_byte_of(view, j) == b'.')
                .and_then(|_| toks.get(after + 1))
                .filter(|&&j| ident(j))
                .map(|&j| view.text(j));
            if let Some(m) = method {
                if ITER_METHODS.contains(&m) {
                    return Some(event(SourceKind::HashIter, k, format!("{label}.{m}()")));
                }
            } else if iter_context {
                // `for x in map` / `for x in &map`.
                let preceded_by_in = toks[..i]
                    .iter()
                    .rev()
                    .find(|&&j| ident(j))
                    .is_some_and(|&j| view.text(j) == "in");
                if preceded_by_in {
                    return Some(event(SourceKind::HashIter, k, format!("iterate {label}")));
                }
            }
        }

        // Tainted binding used here.
        if let Some(ev) = st.taint.get(w) {
            // As a *read*; skip when it is the path after `.` of another
            // ident (a field named like a tainted local is distinct).
            let prev_dot = i > 0 && punct_byte_of(view, toks[i - 1]) == b'.';
            if !prev_dot {
                return Some(ev.clone());
            }
        }

        // Call into a same-file fn whose return carries taint.
        if let Some(ev) = ctx.returns_taint.get(w) {
            let next_paren = toks.get(i + 1).is_some_and(|&j| punct_byte_of(view, j) == b'(');
            if next_paren {
                return Some(ev.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{items, TreeView};

    fn run(src: &str) -> Vec<TaintDiag> {
        let view = TreeView::new(src);
        let it = items(&view);
        det_taint_file(&view, &it, true)
    }

    #[test]
    fn unused_clock_read_is_fine() {
        let d = run("pub fn f() -> u32 { let _t = Instant::now(); 3 }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn clock_into_pub_return_fires_at_the_source() {
        let src = "pub fn f() -> u64 {\n    let t = Instant::now();\n    let e = t.elapsed();\n    e.as_nanos() as u64\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "wall-clock");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn hash_iteration_collected_into_btree_is_cleansed() {
        let src = "pub fn f(n: u32) -> usize {\n    let m = HashMap::new();\n    let s: BTreeSet<u32> = m.keys().copied().collect();\n    s.len()\n}\n";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hash_iteration_into_vec_returned_fires() {
        let src = "pub fn f() -> Vec<u32> {\n    let m = HashMap::new();\n    let v: Vec<u32> = m.keys().copied().collect();\n    v\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "hash-container");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn sorted_vec_from_hash_iteration_is_cleansed() {
        let src = "pub fn f() -> Vec<u32> {\n    let m = HashMap::new;\n    let m = HashMap::new();\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort_unstable();\n    v\n}\n";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn control_taint_through_an_if_header() {
        let src = "pub struct S { hits: u64 }\nimpl S {\n    pub fn poke(&mut self) {\n        let t = Instant::now();\n        if t.elapsed().as_secs() > 1 {\n            self.hits = self.hits + 1;\n        }\n    }\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "wall-clock");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn interprocedural_summary_carries_the_source() {
        let src = "fn stamp() -> u64 { let t = SystemTime::now(); t.as_nanos() as u64 }\npub fn f() -> u64 { stamp() }\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "wall-clock");
        assert_eq!(d[0].line, 1, "reported at the source, not the call site");
    }

    #[test]
    fn thread_id_and_address_report_det_taint() {
        let src = "pub fn f(buf: &[u8]) -> usize {\n    let p = buf.as_ptr() as usize;\n    p\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "det-taint");
        let src2 = "pub fn g() -> u64 { let id = thread::current().id(); hash(id) }\nfn hash(x: ThreadId) -> u64 { 0 }\n";
        let d2 = run(src2);
        assert_eq!(d2.len(), 1, "{d2:?}");
        assert_eq!(d2[0].rule, "det-taint");
    }

    #[test]
    fn renamed_import_cannot_dodge_the_rule() {
        let src = "use std::collections::HashMap as FastMap;\npub fn f() -> Vec<u32> {\n    let m: FastMap<u32, u32> = FastMap::new();\n    let v: Vec<u32> = m.keys().copied().collect();\n    v\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "hash-container");
    }

    #[test]
    fn pure_lookup_hash_map_is_fine() {
        // The whole point of the flow-aware rule: lookups never observe
        // iteration order, so no pragma is needed.
        let src = "pub fn f(keys: &[u32]) -> u64 {\n    let mut m = HashMap::new();\n    let mut acc = 0u64;\n    for k in keys {\n        m.insert(*k, 1u64);\n    }\n    for k in keys {\n        acc += *m.get(k).unwrap_or(&0);\n    }\n    acc\n}\n";
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rng_into_self_state_fires() {
        let src = "pub struct S { seed: u64 }\nimpl S {\n    pub fn reseed(&mut self) {\n        let r = thread_rng();\n        self.seed = r.gen();\n    }\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "ambient-rng");
    }

    #[test]
    fn for_loop_over_hash_map_accumulating_fires() {
        let src = "pub fn f() -> f64 {\n    let m = HashMap::new();\n    let mut acc = 0.0;\n    for (k, v) in &m {\n        acc = acc * 0.5 + v;\n    }\n    acc\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "hash-container");
    }
}
