//! `fae-lint` — the workspace invariant checker.
//!
//! Walks every first-party crate's `src/` tree and reports violations of
//! the project contracts that keep same-seed runs byte-identical and
//! library code panic-free:
//!
//! * **determinism** (`wall-clock`, `ambient-rng`, `hash-container`,
//!   `timeline-phase`) in the five determinism-critical crates
//!   (`fae-core`, `fae-embed`, `fae-models`, `fae-serve`, `fae-sysmodel`);
//! * **no-panic** (`no-panic`) in library code of every first-party
//!   crate (binary targets are exempt);
//! * **float-fuse** (`float-fuse`) in library code of every first-party
//!   crate: 8-lane f32 unroll sites (`chunks_exact(8)`) must pragma
//!   their bit-identity contract, and the pragma's reason must cite
//!   `DESIGN.md §14` (else it is a `bad-pragma`);
//! * **net-deadline** (`net-deadline`) in the networking crate
//!   (`fae-net`): blocking socket I/O must carry an explicit deadline;
//! * **metric-name** (`metric-name`) in every first-party crate except
//!   fae-lint itself: metric names at telemetry emission sites must be
//!   stable lowercase dotted literals, so the Prometheus exposition's
//!   `fae_*` mapping stays collision-free.
//!
//! Violations are suppressed site-by-site with an explicit pragma:
//!
//! ```text
//! // fae-lint: allow(no-panic, reason = "mutex poisoning is unreachable: no panics under lock")
//! ```
//!
//! A pragma covers its own line and the next line. Pragmas that do not
//! parse (`bad-pragma`) or suppress nothing (`unused-pragma`) are
//! themselves violations, so stale annotations cannot accumulate.
//!
//! `#[cfg(test)]` items and `#[test]` functions are exempt from every
//! rule — tests may time things, hash things and unwrap freely.
//!
//! Run it with `cargo run -p fae-lint` from the workspace root; see
//! DESIGN.md §11 for the rule table and the documented lexical gaps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod flow;
pub mod passes;
pub mod regions;
pub mod rules;
pub mod scrub;
pub mod tokens;
pub mod tree;

pub use rules::{RuleInfo, Scope, RULES};

/// The determinism-critical crates: rules in [`Scope::Deterministic`]
/// apply only here.
pub const DET_CRATES: &[&str] =
    &["fae-core", "fae-embed", "fae-models", "fae-serve", "fae-sysmodel"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path as walked (workspace-relative when walking a workspace).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (one of [`RULES`], or `bad-pragma`/`unused-pragma`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// I/O failure while walking or reading source files.
#[derive(Debug)]
pub struct WalkError {
    /// The path that failed.
    pub path: PathBuf,
    /// The underlying error.
    pub source: io::Error,
}

impl fmt::Display for WalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for WalkError {}

/// How a single file should be linted.
#[derive(Debug, Clone, Copy)]
pub struct FileClass {
    /// Apply the [`Scope::Deterministic`] rules.
    pub deterministic: bool,
    /// The file belongs to a binary target (`src/bin/`, `src/main.rs`):
    /// the no-panic rule does not apply.
    pub binary: bool,
    /// Apply the [`Scope::Net`] rules (the fae-net crate: blocking
    /// socket I/O must carry a deadline).
    pub net: bool,
    /// Apply the [`Scope::Metrics`] rule (every first-party crate
    /// except fae-lint itself, whose matchers quote the trigger
    /// tokens): metric names at emission sites must be stable
    /// lowercase dotted literals.
    pub metrics: bool,
}

/// One rule hit before suppression. `offset` is the absolute byte
/// offset of the match in the file, so `#[cfg(test)]` regions apply
/// uniformly to lexical matches, per-file flow findings, and workspace
/// pass findings alike.
#[derive(Debug, Clone)]
struct Candidate {
    line: usize,
    offset: usize,
    rule: String,
    message: String,
}

/// The per-file rule hits: lexical matchers plus (for determinism-scope
/// files) the flow-aware determinism-taint pass.
fn file_candidates(source: &str, scrubbed: &scrub::Scrubbed, class: FileClass) -> Vec<Candidate> {
    let mut cands = Vec::new();
    let mut offset = 0usize;
    // The scrubber preserves byte offsets exactly, so scrubbed and raw
    // lines pair up one-to-one; the metric-name rule needs both (the
    // scrubbed line to locate real call sites, the raw line to read the
    // literal's body, which scrubbing blanks).
    for (idx, (line, raw_line)) in scrubbed.text.lines().zip(source.lines()).enumerate() {
        let line_no = idx + 1;
        let mut matches = Vec::new();
        if class.deterministic {
            rules::deterministic_matches(line, &mut matches);
        }
        if !class.binary {
            rules::no_panic_matches(line, &mut matches);
            rules::float_fuse_matches(line, &mut matches);
        }
        if class.net {
            rules::net_deadline_matches(line, &mut matches);
        }
        if class.metrics {
            rules::metric_name_matches(line, raw_line, &mut matches);
        }
        for m in matches {
            cands.push(Candidate {
                line: line_no,
                offset: offset + m.col,
                rule: m.rule.to_string(),
                message: m.message,
            });
        }
        offset += line.len() + 1;
    }
    if class.deterministic {
        for (line, offset, rule, message) in passes::det_taint::run(source, true) {
            cands.push(Candidate { line, offset, rule: rule.to_string(), message });
        }
    }
    cands
}

/// Applies pragma and test-region suppression to `cands` and appends
/// the pragma-hygiene diagnostics (`bad-pragma`, `unused-pragma`).
fn finalize(
    label: &Path,
    source: &str,
    scrubbed: &scrub::Scrubbed,
    cands: Vec<Candidate>,
) -> Vec<Diagnostic> {
    let regions = regions::test_regions(&scrubbed.text);
    let mut diags = Vec::new();

    for e in &scrubbed.errors {
        diags.push(Diagnostic {
            file: label.to_path_buf(),
            line: e.line,
            rule: "bad-pragma".to_string(),
            message: e.message.clone(),
        });
    }
    for p in &scrubbed.pragmas {
        for r in &p.rules {
            if !rules::is_known_rule(r) {
                diags.push(Diagnostic {
                    file: label.to_path_buf(),
                    line: p.line,
                    rule: "bad-pragma".to_string(),
                    message: format!("unknown rule `{r}` in pragma"),
                });
            } else if r == "float-fuse" && !p.reason.contains("DESIGN.md §14") {
                // The unroll carve-out is a documented numeric contract;
                // every suppression must point readers at its anchor.
                diags.push(Diagnostic {
                    file: label.to_path_buf(),
                    line: p.line,
                    rule: "bad-pragma".to_string(),
                    message: "float-fuse pragma reason must cite the bit-identity \
                              contract anchor `DESIGN.md §14`"
                        .to_string(),
                });
            }
        }
    }

    let mut used_pragmas: BTreeSet<usize> = BTreeSet::new();
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for c in cands {
        if regions.contains(c.offset) {
            continue;
        }
        // A pragma on this line or the line above suppresses the rule.
        let allowed = scrubbed.pragmas.iter().enumerate().find(|(_, p)| {
            (p.line == c.line || p.line + 1 == c.line) && p.rules.iter().any(|r| r == &c.rule)
        });
        if let Some((pi, _)) = allowed {
            used_pragmas.insert(pi);
            continue;
        }
        // Lexical and flow findings can coincide (same line, same
        // rule); report each (line, rule) pair once.
        if !seen.insert((c.line, c.rule.clone())) {
            continue;
        }
        diags.push(Diagnostic {
            file: label.to_path_buf(),
            line: c.line,
            rule: c.rule,
            message: c.message,
        });
    }

    for (pi, p) in scrubbed.pragmas.iter().enumerate() {
        let well_formed = p.rules.iter().all(|r| rules::is_known_rule(r));
        if well_formed
            && !used_pragmas.contains(&pi)
            && !regions.contains(line_offset(source, p.line))
        {
            diags.push(Diagnostic {
                file: label.to_path_buf(),
                line: p.line,
                rule: "unused-pragma".to_string(),
                message: format!(
                    "pragma allows [{}] but suppresses nothing; remove it",
                    p.rules.join(", ")
                ),
            });
        }
    }

    diags.sort();
    diags
}

/// Lints one file's source text. `label` is used in diagnostics.
pub fn lint_source(label: &Path, source: &str, class: FileClass) -> Vec<Diagnostic> {
    let scrubbed = scrub::scrub(source);
    let cands = file_candidates(source, &scrubbed, class);
    finalize(label, source, &scrubbed, cands)
}

/// Byte offset of the start of 1-based `line` in `source`.
fn line_offset(source: &str, line: usize) -> usize {
    let mut off = 0usize;
    for (idx, l) in source.lines().enumerate() {
        if idx + 1 == line {
            return off;
        }
        off += l.len() + 1;
    }
    off
}

/// Classifies a workspace-relative `.rs` path, or `None` when the file
/// is outside the linted set (tests/, benches/, examples/, vendor/,
/// the fixture tree, generated code under target/).
pub fn classify(rel: &Path) -> Option<FileClass> {
    let mut comps = rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned());
    let first = comps.next()?;
    let crate_name = if first == "src" {
        "fae".to_string()
    } else if first == "crates" {
        let name = comps.next()?;
        let src = comps.next()?;
        if src != "src" {
            return None;
        }
        name
    } else {
        return None;
    };
    if crate_name == "fae-lint" && rel.components().any(|c| c.as_os_str() == "fixtures") {
        return None;
    }
    let binary = rel.components().any(|c| c.as_os_str() == "bin")
        || rel.file_name().is_some_and(|f| f == "main.rs");
    Some(FileClass {
        deterministic: DET_CRATES.contains(&crate_name.as_str()),
        binary,
        net: crate_name == "fae-net",
        metrics: crate_name != "fae-lint",
    })
}

/// Recursively collects `.rs` files under `dir`, sorted, so diagnostics
/// come out in a stable order on every platform.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WalkError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|source| WalkError { path: dir.to_path_buf(), source })?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|source| WalkError { path: dir.to_path_buf(), source })?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Routes workspace-pass findings into per-file candidate lists, keyed
/// by the path the pass saw.
fn route_pass_diags(
    pass_diags: Vec<passes::PassDiag>,
    extra: &mut std::collections::BTreeMap<PathBuf, Vec<Candidate>>,
) {
    for d in pass_diags {
        extra.entry(d.file).or_default().push(Candidate {
            line: d.line,
            offset: d.offset,
            rule: d.rule.to_string(),
            message: d.message,
        });
    }
}

/// Lints a set of already-read files: per-file rules first, then the
/// cross-file passes (phase-balance, lock-order, and — when `design`
/// text is supplied — wire-compat on the wire file), with every finding
/// funneled through the same pragma/test-region suppression.
fn lint_file_set(
    files: Vec<(PathBuf, String, FileClass)>,
    design: Option<&str>,
) -> Vec<Diagnostic> {
    let pass_files: Vec<passes::PassFile> = files
        .iter()
        .map(|(rel, source, class)| passes::PassFile {
            rel: rel.clone(),
            source: source.clone(),
            class: *class,
        })
        .collect();
    let mut extra: std::collections::BTreeMap<PathBuf, Vec<Candidate>> =
        std::collections::BTreeMap::new();
    route_pass_diags(passes::phase_balance::run(&pass_files), &mut extra);
    route_pass_diags(passes::lock_order::run(&pass_files), &mut extra);
    if let Some(design) = design {
        if let Some(wire) = pass_files
            .iter()
            .find(|f| f.class.net && f.rel.file_name().is_some_and(|n| n == "wire.rs"))
        {
            route_pass_diags(passes::wire_compat::run(wire, design), &mut extra);
        }
    }

    let mut diags = Vec::new();
    for (rel, source, class) in &files {
        let scrubbed = scrub::scrub(source);
        let mut cands = file_candidates(source, &scrubbed, *class);
        cands.extend(extra.remove(rel).unwrap_or_default());
        diags.extend(finalize(rel, source, &scrubbed, cands));
    }
    diags.sort();
    diags
}

/// Lints a whole workspace rooted at `root`: the root package's `src/`
/// plus every `crates/*/src/`, per-file rules plus the cross-file
/// passes (wire-compat reads the tag ranges out of `root/DESIGN.md`).
/// Returns sorted diagnostics.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, WalkError> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|source| WalkError { path: crates.clone(), source })?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()
            .map_err(|source| WalkError { path: crates.clone(), source })?;
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }

    let mut set = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let Some(class) = classify(&rel) else { continue };
        let source =
            fs::read_to_string(&file).map_err(|source| WalkError { path: file.clone(), source })?;
        set.push((rel, source, class));
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok(lint_file_set(set, design.as_deref()))
}

/// Lints every `.rs` file under `dir` with a fixed [`FileClass`] —
/// used for the seeded-violation fixture trees, where the files are not
/// workspace members. The cross-file passes (phase-balance, lock-order)
/// run over the tree too, so fixture trees can seed their violations;
/// wire-compat needs a DESIGN.md and is exercised via [`lint_wire`].
pub fn lint_tree(dir: &Path, class: FileClass) -> Result<Vec<Diagnostic>, WalkError> {
    let mut files = Vec::new();
    walk(dir, &mut files)?;
    let mut set = Vec::new();
    for file in files {
        let source =
            fs::read_to_string(&file).map_err(|source| WalkError { path: file.clone(), source })?;
        set.push((file, source, class));
    }
    Ok(lint_file_set(set, None))
}

/// Runs the wire-compat pass on a fixture directory holding `wire.rs`
/// (the message module) and `design.md` (the declared tag ranges).
/// Pragmas and test regions in `wire.rs` apply as usual.
pub fn lint_wire(dir: &Path) -> Result<Vec<Diagnostic>, WalkError> {
    let wire_path = dir.join("wire.rs");
    let design_path = dir.join("design.md");
    let source = fs::read_to_string(&wire_path)
        .map_err(|source| WalkError { path: wire_path.clone(), source })?;
    let design = fs::read_to_string(&design_path)
        .map_err(|source| WalkError { path: design_path.clone(), source })?;
    let class = FileClass { deterministic: false, binary: false, net: true, metrics: false };
    let wire = passes::PassFile { rel: wire_path.clone(), source: source.clone(), class };
    let mut extra: std::collections::BTreeMap<PathBuf, Vec<Candidate>> =
        std::collections::BTreeMap::new();
    route_pass_diags(passes::wire_compat::run(&wire, &design), &mut extra);
    let scrubbed = scrub::scrub(&source);
    let cands = extra.remove(&wire_path).unwrap_or_default();
    Ok(finalize(&wire_path, &source, &scrubbed, cands))
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileClass =
        FileClass { deterministic: true, binary: false, net: false, metrics: true };

    #[test]
    fn clean_source_is_clean() {
        let d =
            lint_source(Path::new("x.rs"), "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }", LIB);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pragma_suppresses_and_is_used() {
        let src = "// fae-lint: allow(no-panic, reason = \"len checked above\")\nlet x = v.first().unwrap();\n";
        let d = lint_source(Path::new("x.rs"), src, LIB);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unused_pragma_fires() {
        let src = "// fae-lint: allow(no-panic, reason = \"nothing here\")\nlet x = 1;\n";
        let d = lint_source(Path::new("x.rs"), src, LIB);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unused-pragma");
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n use std::time::Instant;\n fn t() { x.unwrap(); }\n}\n";
        let d = lint_source(Path::new("x.rs"), src, LIB);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn binary_skips_no_panic_keeps_determinism() {
        let bin = FileClass { deterministic: true, binary: true, net: false, metrics: true };
        // The unwrap is exempt (binary target); the clock read flowing
        // into the public return is not.
        let src = "pub fn run() -> u64 {\n    args.next().unwrap();\n    let t = Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
        let d = lint_source(Path::new("bin.rs"), src, bin);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "wall-clock");
        assert_eq!(d[0].line, 3, "reported at the clock read, not the return");
    }

    #[test]
    fn net_rule_applies_only_with_the_net_classification() {
        let net = FileClass { deterministic: false, binary: false, net: true, metrics: false };
        let src = "fn f(s: &mut TcpStream) { s.read_exact(&mut b).ok(); }\n";
        let d = lint_source(Path::new("x.rs"), src, net);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "net-deadline");
        assert!(lint_source(Path::new("x.rs"), src, LIB).is_empty(), "scope is fae-net only");
    }

    #[test]
    fn metric_name_rule_applies_only_with_the_metrics_classification() {
        let src = "pub fn f(t: &T) { t.counter_add(\"Bad Name\", 1); }\n";
        let d = lint_source(Path::new("x.rs"), src, LIB);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "metric-name");
        let unmetered = FileClass { metrics: false, ..LIB };
        assert!(
            lint_source(Path::new("x.rs"), src, unmetered).is_empty(),
            "metric-name must stay inside its scope"
        );
    }

    #[test]
    fn float_fuse_pragma_must_cite_the_design_anchor() {
        // A citing pragma suppresses the unroll site cleanly.
        let good = "// fae-lint: allow(float-fuse, reason = \"elementwise; DESIGN.md §14\")\nlet mut d = dst.chunks_exact_mut(8);\n";
        assert!(lint_source(Path::new("x.rs"), good, LIB).is_empty());
        // A pragma without the citation is itself a violation (and the
        // site stays suppressed, so exactly one diagnostic comes out).
        let bad = "// fae-lint: allow(float-fuse, reason = \"it is fine\")\nlet mut d = dst.chunks_exact_mut(8);\n";
        let d = lint_source(Path::new("x.rs"), bad, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "bad-pragma");
        assert!(d[0].message.contains("DESIGN.md §14"));
        // A naked unroll site fires the rule itself.
        let naked = "let mut d = dst.chunks_exact_mut(8);\n";
        let d = lint_source(Path::new("x.rs"), naked, LIB);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "float-fuse");
        // Binary targets are exempt (Scope::AllLibs, like no-panic).
        let bin = FileClass { binary: true, ..LIB };
        assert!(lint_source(Path::new("bin.rs"), naked, bin).is_empty());
    }

    #[test]
    fn classify_paths() {
        assert!(classify(Path::new("crates/fae-core/src/trainer.rs")).is_some_and(|c| c
            .deterministic
            && !c.binary
            && !c.net
            && c.metrics));
        assert!(classify(Path::new("crates/fae-telemetry/src/lib.rs"))
            .is_some_and(|c| !c.deterministic && !c.binary && c.metrics));
        assert!(
            classify(Path::new("crates/fae-lint/src/rules.rs")).is_some_and(|c| !c.metrics),
            "fae-lint's own matchers quote the trigger tokens; exempt"
        );
        assert!(classify(Path::new("crates/fae-net/src/deadline.rs"))
            .is_some_and(|c| c.net && !c.deterministic && !c.binary));
        assert!(classify(Path::new("src/bin/fae.rs")).is_some_and(|c| c.binary));
        assert!(classify(Path::new("src/main.rs")).is_some_and(|c| c.binary));
        assert!(classify(Path::new("crates/fae-core/tests/t.rs")).is_none());
        assert!(classify(Path::new("crates/fae-lint/fixtures/violations/src/lib.rs")).is_none());
        assert!(classify(Path::new("vendor/rand/src/lib.rs")).is_none());
    }
}
