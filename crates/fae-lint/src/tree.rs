//! Brace-matched token trees and item extraction.
//!
//! Sits between the flat token stream ([`crate::tokens`]) and the flow
//! passes: groups `()`/`[]`/`{}` into nested nodes, then walks the tree
//! pulling out the items the passes reason about — functions (with
//! their body groups), enums (with variant names and lines), struct
//! fields (with flattened type text), `use` aliases, and `const`
//! array initializers. This is *use-resolution light*: `use
//! std::collections::HashMap as FastMap` makes `FastMap` resolve to the
//! full path, so renamed imports cannot dodge the determinism rules.
//!
//! Not a parser: generics are skipped by angle-depth counting, patterns
//! are treated as token runs, and macro bodies are walked like ordinary
//! code. DESIGN.md §16 lists the resulting soundness caveats.

use crate::tokens::{Tok, TokKind};

/// One node of the token tree.
#[derive(Debug)]
pub enum Node {
    /// A leaf: index into the token slice.
    Leaf(usize),
    /// A delimited group. `open`/`close` index the delimiter tokens
    /// (close may equal open for an unterminated group at EOF).
    Group {
        /// Opening delimiter byte: `(`, `[` or `{`.
        delim: u8,
        /// Token index of the opening delimiter.
        open: usize,
        /// Token index of the closing delimiter (or the last token).
        close: usize,
        /// Nodes between the delimiters.
        children: Vec<Node>,
    },
}

fn closer_for(open: u8) -> u8 {
    match open {
        b'(' => b')',
        b'[' => b']',
        _ => b'}',
    }
}

/// A resolved view over tokens + source, with the helpers every pass
/// shares.
pub struct TreeView<'s> {
    /// The raw source text.
    pub source: &'s str,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// The token tree over `toks`.
    pub nodes: Vec<Node>,
}

impl<'s> TreeView<'s> {
    /// Tokenizes and tree-builds `source`.
    pub fn new(source: &'s str) -> Self {
        let toks = crate::tokens::tokenize(source);
        let nodes = build_with_src(&toks, source);
        TreeView { source, toks, nodes }
    }

    /// Text of token `i`.
    pub fn text(&self, i: usize) -> &'s str {
        self.toks[i].text(self.source)
    }

    /// 1-based line of token `i`.
    pub fn line(&self, i: usize) -> usize {
        self.toks[i].line
    }

    /// True when token `i` is the identifier `word`.
    pub fn is_ident(&self, i: usize, word: &str) -> bool {
        self.toks[i].kind == TokKind::Ident && self.text(i) == word
    }

    /// True when token `i` is the punctuation byte `b`.
    pub fn is_punct(&self, i: usize, b: u8) -> bool {
        self.toks[i].kind == TokKind::Punct && self.source.as_bytes()[self.toks[i].start] == b
    }
}

/// Tree build that classifies delimiters from the source text (the
/// token itself stores only spans).
fn build_with_src(toks: &[Tok], source: &str) -> Vec<Node> {
    let mut pos = 0usize;
    build_until_src(toks, source, &mut pos, None)
}

fn src_punct(toks: &[Tok], source: &str, i: usize) -> Option<u8> {
    let t = &toks[i];
    if t.kind == TokKind::Punct {
        source.as_bytes().get(t.start).copied()
    } else {
        None
    }
}

fn build_until_src(toks: &[Tok], source: &str, pos: &mut usize, until: Option<u8>) -> Vec<Node> {
    let mut out = Vec::new();
    while *pos < toks.len() {
        let byte = src_punct(toks, source, *pos);
        if let Some(b) = byte {
            if Some(b) == until {
                return out;
            }
            if b == b'(' || b == b'[' || b == b'{' {
                let open = *pos;
                *pos += 1;
                let children = build_until_src(toks, source, pos, Some(closer_for(b)));
                let close = (*pos).min(toks.len().saturating_sub(1));
                out.push(Node::Group { delim: b, open, close, children });
                if *pos < toks.len() {
                    *pos += 1;
                }
                continue;
            }
        }
        out.push(Node::Leaf(*pos));
        *pos += 1;
    }
    out
}

/// A function found in the tree.
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// `Type` when defined inside `impl Type` (or `impl Trait for Type`).
    pub owner: Option<String>,
    /// True when any ancestor item or the fn itself is `pub`.
    pub is_pub: bool,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter names (pattern identifiers, `self` included).
    pub params: Vec<String>,
    /// Indices into the flat token stream covering the body group's
    /// interior (between, not including, the braces).
    pub body: (usize, usize),
}

/// An enum found in the tree.
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names with their 1-based lines.
    pub variants: Vec<(String, usize)>,
}

/// A struct field with a flattened type string (tokens joined by one
/// space), e.g. `Vec < RwLock < Tensor > >`.
pub struct FieldItem {
    /// Owning struct name.
    pub strukt: String,
    /// Field name (tuple fields are `0`, `1`, ...).
    pub field: String,
    /// Flattened type text.
    pub ty: String,
    /// 1-based line of the field name.
    pub line: usize,
}

/// A `use` alias: local name → full path (`::`-joined).
pub struct UseItem {
    /// The name visible in this file.
    pub name: String,
    /// The full path it resolves to.
    pub path: String,
}

/// Everything the passes need from one file.
pub struct Items {
    /// Functions, including those nested in `impl`/`mod` blocks.
    pub fns: Vec<FnItem>,
    /// Enums.
    pub enums: Vec<EnumItem>,
    /// Struct fields.
    pub fields: Vec<FieldItem>,
    /// Use aliases.
    pub uses: Vec<UseItem>,
}

/// Extracts items from a [`TreeView`].
pub fn items(view: &TreeView<'_>) -> Items {
    let mut out =
        Items { fns: Vec::new(), enums: Vec::new(), fields: Vec::new(), uses: Vec::new() };
    scan_items(view, &view.nodes, None, false, &mut out);
    out
}

fn flat_leaves(nodes: &[Node], out: &mut Vec<usize>) {
    for n in nodes {
        match n {
            Node::Leaf(i) => out.push(*i),
            Node::Group { open, close, children, .. } => {
                out.push(*open);
                flat_leaves(children, out);
                out.push(*close);
            }
        }
    }
}

/// All token indices under `nodes`, delimiters included, in order.
pub fn flatten(nodes: &[Node]) -> Vec<usize> {
    let mut out = Vec::new();
    flat_leaves(nodes, &mut out);
    out
}

fn scan_items(
    view: &TreeView<'_>,
    nodes: &[Node],
    owner: Option<&str>,
    outer_pub: bool,
    out: &mut Items,
) {
    let n = nodes.len();
    let mut idx = 0usize;
    let mut last_pub = false;
    while idx < n {
        let node = &nodes[idx];
        let leaf = match node {
            Node::Leaf(i) => Some(*i),
            Node::Group { .. } => None,
        };
        let Some(i) = leaf else {
            idx += 1;
            continue;
        };
        if view.is_ident(i, "pub") {
            last_pub = true;
            idx += 1;
            continue;
        }
        if view.is_ident(i, "use") {
            scan_use(view, nodes, &mut idx, out);
            last_pub = false;
            continue;
        }
        if view.is_ident(i, "fn") {
            scan_fn(view, nodes, &mut idx, owner, outer_pub || last_pub, out);
            last_pub = false;
            continue;
        }
        if view.is_ident(i, "enum") {
            scan_enum(view, nodes, &mut idx, out);
            last_pub = false;
            continue;
        }
        if view.is_ident(i, "struct") {
            scan_struct(view, nodes, &mut idx, out);
            last_pub = false;
            continue;
        }
        if view.is_ident(i, "impl") || view.is_ident(i, "mod") || view.is_ident(i, "trait") {
            // Recurse into the block with the owner type name (for impl).
            let is_impl = view.is_ident(i, "impl");
            let mut j = idx + 1;
            let mut impl_owner: Option<String> = None;
            let mut seen_for = false;
            while j < n {
                match &nodes[j] {
                    Node::Leaf(k) => {
                        if view.is_ident(*k, "for") {
                            seen_for = true;
                            impl_owner = None;
                        } else if view.toks[*k].kind == TokKind::Ident
                            && is_impl
                            && (impl_owner.is_none() || seen_for)
                        {
                            let w = view.text(*k);
                            if w != "for" && w != "where" && w != "dyn" && w != "const" {
                                impl_owner = Some(w.to_string());
                                seen_for = false;
                            }
                        }
                        if view.is_punct(*k, b';') {
                            break;
                        }
                        j += 1;
                    }
                    Node::Group { delim, children, .. } => {
                        if *delim == b'{' {
                            let owner_name = if is_impl { impl_owner.as_deref() } else { owner };
                            scan_items(view, children, owner_name, outer_pub || last_pub, out);
                            break;
                        }
                        j += 1;
                    }
                }
            }
            idx = j + 1;
            last_pub = false;
            continue;
        }
        last_pub = false;
        idx += 1;
    }
}

fn scan_use(view: &TreeView<'_>, nodes: &[Node], idx: &mut usize, out: &mut Items) {
    // Collect tokens up to `;`, handling `use a::b::{C, D as E};` one
    // level deep (the only shapes in this workspace).
    let mut prefix: Vec<String> = Vec::new();
    let mut j = *idx + 1;
    while j < nodes.len() {
        match &nodes[j] {
            Node::Leaf(i) => {
                if view.is_punct(*i, b';') {
                    break;
                }
                if view.toks[*i].kind == TokKind::Ident {
                    prefix.push(view.text(*i).to_string());
                }
                j += 1;
            }
            Node::Group { children, .. } => {
                // Brace group: each comma-separated entry extends prefix.
                let leaves = flatten(children);
                let mut entry: Vec<String> = Vec::new();
                let mut alias: Option<String> = None;
                let mut in_alias = false;
                let push_entry =
                    |entry: &mut Vec<String>, alias: &mut Option<String>, out: &mut Items| {
                        if let Some(last) = entry.last() {
                            let name = alias.clone().unwrap_or_else(|| last.clone());
                            let mut path = prefix.clone();
                            path.extend(entry.iter().cloned());
                            out.uses.push(UseItem { name, path: path.join("::") });
                        }
                        entry.clear();
                        *alias = None;
                    };
                for &k in &leaves {
                    if view.is_punct(k, b',') {
                        in_alias = false;
                        push_entry(&mut entry, &mut alias, out);
                    } else if view.is_ident(k, "as") {
                        in_alias = true;
                    } else if view.toks[k].kind == TokKind::Ident {
                        if in_alias {
                            alias = Some(view.text(k).to_string());
                        } else {
                            entry.push(view.text(k).to_string());
                        }
                    }
                }
                push_entry(&mut entry, &mut alias, out);
                prefix.clear(); // consumed by the group entries
                j += 1;
            }
        }
    }
    // Plain `use a::b::C;` or `use a::b::C as D;`
    if !prefix.is_empty() {
        let (name, path) = if let Some(pos) = prefix.iter().position(|s| s == "as") {
            let alias = prefix.get(pos + 1).cloned().unwrap_or_default();
            (alias, prefix[..pos].to_vec())
        } else {
            (prefix.last().cloned().unwrap_or_default(), prefix.clone())
        };
        if !name.is_empty() {
            out.uses.push(UseItem { name, path: path.join("::") });
        }
    }
    *idx = j + 1;
}

fn scan_fn(
    view: &TreeView<'_>,
    nodes: &[Node],
    idx: &mut usize,
    owner: Option<&str>,
    is_pub: bool,
    out: &mut Items,
) {
    let fn_tok = match &nodes[*idx] {
        Node::Leaf(i) => *i,
        Node::Group { .. } => {
            *idx += 1;
            return;
        }
    };
    let mut j = *idx + 1;
    let mut name = String::new();
    // Name is the next ident.
    while j < nodes.len() {
        if let Node::Leaf(i) = &nodes[j] {
            if view.toks[*i].kind == TokKind::Ident {
                name = view.text(*i).to_string();
                j += 1;
                break;
            }
        }
        j += 1;
    }
    // Params: first paren group at angle-depth 0 (skips generics, even
    // ones containing `Fn(..)` bounds).
    let mut angle = 0i32;
    let mut params: Vec<String> = Vec::new();
    let mut body: Option<(usize, usize)> = None;
    while j < nodes.len() {
        match &nodes[j] {
            Node::Leaf(i) => {
                if view.is_punct(*i, b'<') {
                    angle += 1;
                } else if view.is_punct(*i, b'>') && angle > 0 {
                    // `->` must not close an angle: check the previous
                    // byte is not `-` or `=`.
                    let at = view.toks[*i].start;
                    let prev = if at == 0 { b' ' } else { view.source.as_bytes()[at - 1] };
                    if prev != b'-' && prev != b'=' {
                        angle -= 1;
                    }
                } else if view.is_punct(*i, b';') {
                    // Trait method signature without a body.
                    *idx = j + 1;
                    out.fns.push(FnItem {
                        name,
                        owner: owner.map(|s| s.to_string()),
                        is_pub,
                        fn_tok,
                        line: view.line(fn_tok),
                        params,
                        body: (0, 0),
                    });
                    return;
                }
                j += 1;
            }
            Node::Group { delim, open, close, children } => {
                if *delim == b'(' && angle == 0 && params.is_empty() && body.is_none() {
                    params = param_names(view, children);
                    j += 1;
                } else if *delim == b'{' {
                    body = Some((*open + 1, *close));
                    // Nested fns/closures inside the body: recurse.
                    scan_items(view, children, owner, false, out);
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
        }
    }
    out.fns.push(FnItem {
        name,
        owner: owner.map(|s| s.to_string()),
        is_pub,
        fn_tok,
        line: view.line(fn_tok),
        params,
        body: body.unwrap_or((0, 0)),
    });
    *idx = j;
}

/// Pattern identifiers of a parameter list: the ident before each `:`
/// at depth 0, plus `self` if present.
fn param_names(view: &TreeView<'_>, children: &[Node]) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for n in children {
        match n {
            Node::Leaf(i) => {
                if view.is_ident(*i, "self") {
                    out.push("self".to_string());
                    current = None;
                } else if view.is_punct(*i, b':') {
                    if let Some(name) = current.take() {
                        out.push(name);
                    }
                } else if view.is_punct(*i, b',') {
                    current = None;
                } else if view.toks[*i].kind == TokKind::Ident {
                    let w = view.text(*i);
                    if w != "mut" && w != "ref" {
                        current = Some(w.to_string());
                    }
                }
            }
            Node::Group { .. } => {}
        }
    }
    out
}

fn scan_enum(view: &TreeView<'_>, nodes: &[Node], idx: &mut usize, out: &mut Items) {
    let mut j = *idx + 1;
    let mut name = String::new();
    let mut line = 0usize;
    while j < nodes.len() {
        match &nodes[j] {
            Node::Leaf(i) => {
                if view.toks[*i].kind == TokKind::Ident && name.is_empty() {
                    name = view.text(*i).to_string();
                    line = view.line(*i);
                }
                if view.is_punct(*i, b';') {
                    break;
                }
                j += 1;
            }
            Node::Group { delim, children, .. } => {
                if *delim == b'{' {
                    let mut variants = Vec::new();
                    // A variant is an ident at depth 0 that is either
                    // followed by `,` / `(` / `{` / `=` or ends the list.
                    let mut expecting = true;
                    for c in children {
                        match c {
                            Node::Leaf(k) => {
                                if view.is_punct(*k, b',') {
                                    expecting = true;
                                } else if view.is_punct(*k, b'#') {
                                    // attribute start; the bracket group
                                    // is skipped as a Group below
                                } else if view.toks[*k].kind == TokKind::Ident && expecting {
                                    variants.push((view.text(*k).to_string(), view.line(*k)));
                                    expecting = false;
                                }
                            }
                            Node::Group { .. } => {}
                        }
                    }
                    out.enums.push(EnumItem { name, line, variants });
                    break;
                }
                j += 1;
            }
        }
    }
    *idx = j + 1;
}

fn scan_struct(view: &TreeView<'_>, nodes: &[Node], idx: &mut usize, out: &mut Items) {
    let mut j = *idx + 1;
    let mut name = String::new();
    while j < nodes.len() {
        match &nodes[j] {
            Node::Leaf(i) => {
                if view.toks[*i].kind == TokKind::Ident && name.is_empty() {
                    name = view.text(*i).to_string();
                }
                if view.is_punct(*i, b';') {
                    break; // unit struct or tuple struct already handled
                }
                j += 1;
            }
            Node::Group { delim, children, .. } => {
                if *delim == b'{' {
                    scan_fields_braced(view, children, &name, out);
                    break;
                }
                if *delim == b'(' {
                    scan_fields_tuple(view, children, &name, out);
                    j += 1;
                    continue;
                }
                j += 1;
            }
        }
    }
    *idx = j + 1;
}

fn scan_fields_braced(view: &TreeView<'_>, children: &[Node], strukt: &str, out: &mut Items) {
    // field: `name : <type tokens> ,`
    let mut i = 0usize;
    let n = children.len();
    while i < n {
        // Skip attributes and `pub`.
        let mut field: Option<(String, usize)> = None;
        while i < n {
            match &children[i] {
                Node::Leaf(k) => {
                    if view.is_punct(*k, b'#') {
                        i += 1; // `[`-group skipped below
                    } else if view.is_ident(*k, "pub") {
                        i += 1;
                    } else if view.toks[*k].kind == TokKind::Ident {
                        field = Some((view.text(*k).to_string(), view.line(*k)));
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                Node::Group { delim, .. } => {
                    if *delim == b'(' {
                        // pub(crate) visibility group
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        let Some((fname, fline)) = field else { break };
        // Expect `:` then type tokens until depth-0 `,`.
        let mut ty = String::new();
        let mut saw_colon = false;
        while i < n {
            match &children[i] {
                Node::Leaf(k) => {
                    if view.is_punct(*k, b',') {
                        i += 1;
                        break;
                    }
                    if view.is_punct(*k, b':') && !saw_colon {
                        saw_colon = true;
                    } else if saw_colon {
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push_str(view.text(*k));
                    }
                    i += 1;
                }
                Node::Group { children: gc, delim, .. } => {
                    if saw_colon {
                        let inner = flatten(gc);
                        if !ty.is_empty() {
                            ty.push(' ');
                        }
                        ty.push(*delim as char);
                        for &k in &inner {
                            ty.push(' ');
                            ty.push_str(view.text(k));
                        }
                        ty.push(' ');
                        ty.push(closer_for(*delim) as char);
                    }
                    i += 1;
                }
            }
        }
        if saw_colon {
            out.fields.push(FieldItem {
                strukt: strukt.to_string(),
                field: fname,
                ty,
                line: fline,
            });
        }
    }
}

fn scan_fields_tuple(view: &TreeView<'_>, children: &[Node], strukt: &str, out: &mut Items) {
    // Tuple fields: comma-separated type runs, named 0, 1, ...
    let mut ty = String::new();
    let mut line = 0usize;
    let mut n_field = 0usize;
    let flush = |ty: &mut String, line: usize, n_field: &mut usize, out: &mut Items| {
        if !ty.trim().is_empty() {
            out.fields.push(FieldItem {
                strukt: strukt.to_string(),
                field: n_field.to_string(),
                ty: ty.trim().to_string(),
                line,
            });
            *n_field += 1;
        }
        ty.clear();
    };
    for c in children {
        match c {
            Node::Leaf(k) => {
                if line == 0 {
                    line = view.line(*k);
                }
                if view.is_punct(*k, b',') {
                    flush(&mut ty, line, &mut n_field, out);
                    continue;
                }
                if view.is_ident(*k, "pub") {
                    continue;
                }
                ty.push(' ');
                ty.push_str(view.text(*k));
            }
            Node::Group { children: gc, delim, .. } => {
                let inner = flatten(gc);
                ty.push(' ');
                ty.push(*delim as char);
                for &k in &inner {
                    ty.push(' ');
                    ty.push_str(view.text(k));
                }
                ty.push(' ');
                ty.push(closer_for(*delim) as char);
            }
        }
    }
    flush(&mut ty, line, &mut n_field, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_nest() {
        let view = TreeView::new("fn f(a: u32) { g(a, [1, 2]); }");
        assert!(!view.nodes.is_empty());
        let it = items(&view);
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "f");
        assert_eq!(it.fns[0].params, vec!["a"]);
    }

    #[test]
    fn impl_owner_and_pub() {
        let src = "pub struct S { x: u32 }\nimpl S { pub fn m(&self, k: u8) -> u8 { k } }";
        let view = TreeView::new(src);
        let it = items(&view);
        let m = it.fns.iter().find(|f| f.name == "m").expect("m found");
        assert_eq!(m.owner.as_deref(), Some("S"));
        assert!(m.is_pub);
        assert_eq!(m.params, vec!["self", "k"]);
        assert_eq!(it.fields.len(), 1);
        assert_eq!(it.fields[0].strukt, "S");
        assert_eq!(it.fields[0].field, "x");
        assert_eq!(it.fields[0].ty, "u32");
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl Display for Wire { fn fmt(&self) {} }";
        let view = TreeView::new(src);
        let it = items(&view);
        assert_eq!(it.fns[0].owner.as_deref(), Some("Wire"));
    }

    #[test]
    fn use_aliases_resolve() {
        let src =
            "use std::collections::HashMap as FastMap;\nuse std::sync::{Mutex, RwLock as RwL};\n";
        let view = TreeView::new(src);
        let it = items(&view);
        let find = |n: &str| it.uses.iter().find(|u| u.name == n).map(|u| u.path.clone());
        assert_eq!(find("FastMap").as_deref(), Some("std::collections::HashMap"));
        assert_eq!(find("Mutex").as_deref(), Some("std::sync::Mutex"));
        assert_eq!(find("RwL").as_deref(), Some("std::sync::RwLock"));
    }

    #[test]
    fn enums_and_variants() {
        let src = "pub enum Phase { A, B(u32), C { x: u8 } }";
        let view = TreeView::new(src);
        let it = items(&view);
        assert_eq!(it.enums.len(), 1);
        let names: Vec<_> = it.enums[0].variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn generic_fn_bounds_do_not_eat_params() {
        let src = "fn apply<F: Fn(u32) -> bool>(pred: F, x: u32) -> bool { pred(x) }";
        let view = TreeView::new(src);
        let it = items(&view);
        assert_eq!(it.fns[0].params, vec!["pred", "x"]);
    }

    #[test]
    fn tuple_struct_fields() {
        let src = "pub struct PhaseSeconds(pub [f64; 8]);";
        let view = TreeView::new(src);
        let it = items(&view);
        assert_eq!(it.fields.len(), 1);
        assert_eq!(it.fields[0].field, "0");
        assert!(it.fields[0].ty.contains("f64"));
        assert!(it.fields[0].ty.contains('8'));
    }
}
