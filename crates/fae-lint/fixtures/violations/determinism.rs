//! Seeded determinism violations. Every marked line below must produce a
//! diagnostic; `tests/fixture.rs` pins the exact rule and line numbers,
//! and CI runs fae-lint over this tree expecting a non-zero exit.
//! The `use` lines and the innocent HashMap below are deliberately
//! diagnostic-free: the flow-aware pass flags escaping flows, not
//! mentions.

pub fn stamp() -> Instant {
    // wall-clock: the host-clock read escapes through the pub return.
    Instant::now()
}

pub fn entropy() -> u64 {
    // ambient-rng: the ambient generator's output escapes (line 15).
    let mut r = rand::thread_rng();
    r.next_u64()
}

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    // Clean: building and returning a HashMap is order-independent;
    // only *iterating* one into digest-affecting state is a violation.
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn charge(timeline: &mut Timeline, secs: f64) {
    timeline.add(secs, 1.0); // timeline-phase: no Phase constant named
}
