//! Seeded determinism violations. Every marked line below must produce a
//! diagnostic; `tests/fixture.rs` pins the exact rule and line numbers,
//! and CI runs fae-lint over this tree expecting a non-zero exit.

use std::collections::HashMap; // hash-container
use std::time::Instant; // wall-clock

pub fn stamp() -> Instant {
    // wall-clock
    Instant::now()
}

pub fn entropy() -> u64 {
    // ambient-rng
    let mut r = rand::thread_rng();
    r.next_u64()
}

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
   
    let mut m = HashMap::new(); // hash-container
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn charge(timeline: &mut Timeline, secs: f64) {
    // timeline-phase — the charge names no Phase constant.
    timeline.add(secs, 1.0);
}
