//! Seeded pragma violations: stale and malformed annotations are
//! themselves errors so suppressions cannot rot.

pub fn stale() -> u32 {
    // fae-lint: allow(no-panic, reason = "unused-pragma — suppresses nothing")
    1 + 1
}

pub fn unknown_rule(v: &[u32]) -> u32 {
    // fae-lint: allow(no-such-rule, reason = "bad-pragma — unknown rule id")
    v.len() as u32
}

pub fn missing_reason(v: &[u32]) -> u32 {
    // fae-lint: allow(no-panic)
    *v.first().unwrap()
}
