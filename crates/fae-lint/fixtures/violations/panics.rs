//! Seeded no-panic violations.

pub fn first(v: &[u32]) -> u32 {
    // no-panic (.unwrap())
    *v.first().unwrap()
}

pub fn must(path: &str) -> String {
    // no-panic (.expect(...))
    std::fs::read_to_string(path).expect("readable")
}

pub fn boom() {
    // no-panic (panic!)
    panic!("seeded violation");
}

pub fn later() {
    // no-panic (todo!)
    todo!()
}

pub fn pick(m: &Map) -> u64 {
    // no-panic (string-key indexing)
    m["key"]
}
