//! Seeded float-fuse violations: 8-lane unroll sites without their
//! bit-identity pragma, and a pragma that fails to cite the contract.

pub fn naked_unroll(dst: &mut [f32]) {
    for c in dst.chunks_exact_mut(8) {
        c[0] += 1.0;
    }
}

pub fn uncited_pragma(src: &[f32]) -> f32 {
    // fae-lint: allow(float-fuse, reason = "trust me, the sums are fine")
    let it = src.chunks_exact(8);
    it.remainder().len() as f32
}
