//! Seeded net-deadline violations: every way socket I/O can block
//! without a bound. Linted with the `net` classification only — the
//! pinned triples live in tests/fixture.rs.

pub fn naked_read(stream: &mut std::net::TcpStream, buf: &mut [u8]) {
    let _ = stream.read_exact(buf);
}

pub fn naked_write(stream: &mut std::net::TcpStream, bytes: &[u8]) {
    let _ = stream.write_all(bytes);
}

pub fn unbounded_slurp(stream: &mut std::net::TcpStream, buf: &mut Vec<u8>) {
    let _ = stream.read_to_end(buf);
}

pub fn unbounded_line(reader: &mut std::io::BufReader<std::net::TcpStream>, buf: &mut Vec<u8>) {
    let _ = reader.read_until(b'\n', buf);
}

pub fn os_default_connect(addr: &str) {
    let _ = std::net::TcpStream::connect(addr);
}

pub fn deadline_removal(stream: &std::net::TcpStream) {
    let _ = stream.set_read_timeout(None);
    let _ = stream.set_write_timeout(None);
}

pub fn blessed_shapes_do_not_fire(stream: &std::net::TcpStream, addr: &std::net::SocketAddr) {
    let _ = std::net::TcpStream::connect_timeout(addr, std::time::Duration::from_millis(250));
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(250)));
}

pub fn suppressed_with_proof(stream: &mut std::net::TcpStream, buf: &mut [u8]) {
    // fae-lint: allow(net-deadline, reason = "deadline set by the caller one frame up")
    let _ = stream.read_exact(buf);
}
