//! Seeded determinism-taint flows: every case below lets a
//! nondeterministic source reach digest-affecting state (a pub return,
//! a `self` write). `tests/fixture.rs` pins the exact rule and line of
//! each finding — always the *source* line, not the escape site.

use std::collections::HashMap as FastMap;

pub fn clock_flow() -> u64 {
    let t = Instant::now(); // wall-clock (line 9)
    let e = t.elapsed();
    e.as_nanos() as u64
}

pub fn hash_order_escapes() -> Vec<u32> {
    let m = HashMap::new();
    let v: Vec<u32> = m.keys().copied().collect(); // hash-container (line 16)
    v
}

pub fn renamed_import_flows() -> Vec<u32> {
    let m: FastMap<u32, u32> = FastMap::new();
    let v: Vec<u32> = m.keys().copied().collect(); // hash-container (line 22)
    v
}

pub struct Counter {
    seed: u64,
    hits: u64,
}

impl Counter {
    pub fn reseed(&mut self) {
        let r = thread_rng(); // ambient-rng (line 33)
        self.seed = r.gen();
    }

    pub fn timed_poke(&mut self) {
        let t = Instant::now(); // wall-clock via control flow (line 38)
        if t.elapsed().as_secs() > 1 {
            self.hits = self.hits + 1;
        }
    }
}

fn stamp() -> u64 {
    let t = SystemTime::now(); // wall-clock, reported here (line 46)
    t.as_nanos() as u64
}

pub fn indirect_clock() -> u64 {
    stamp()
}

pub fn address_flow(buf: &[u8]) -> usize {
    let p = buf.as_ptr() as usize; // det-taint (line 54)
    p
}
