//! The same nondeterministic APIs used in digest-safe ways — the
//! flow-aware pass must report nothing here. Each case is a pattern
//! the retired lexical matchers would have flagged.

pub fn unused_clock_read() -> u32 {
    let _t = Instant::now();
    3
}

pub fn pure_lookups(keys: &[u32]) -> u64 {
    let mut m = HashMap::new();
    for k in keys {
        m.insert(*k, 1u64);
    }
    let mut acc = 0u64;
    for k in keys {
        acc += *m.get(k).unwrap_or(&0);
    }
    acc
}

pub fn sorted_iteration() -> Vec<u32> {
    let m = HashMap::new();
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort_unstable();
    v
}

pub fn rehomed_into_btree() -> usize {
    let m = HashMap::new();
    let s: BTreeSet<u32> = m.keys().copied().collect();
    s.len()
}

pub fn order_free_aggregate() -> usize {
    let m = HashMap::new();
    m.len()
}
