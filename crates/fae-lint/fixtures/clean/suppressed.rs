//! Everything in this file is either pragma-suppressed, test-exempt or
//! simply allowed — fae-lint must report it clean under the strictest
//! classification (deterministic library code).

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn first(v: &[u32]) -> u32 {
    // fae-lint: allow(no-panic, reason = "caller asserts v is non-empty")
    *v.first().unwrap()
}

pub fn charge(timeline: &mut Timeline, secs: f64) {
    timeline.add(Phase::Transfer, secs);
}

pub fn safe_first(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

pub fn unrolled_scale(dst: &mut [f32], s: f32) {
    // fae-lint: allow(float-fuse, reason = "elementwise, no f32 reassociation; DESIGN.md §14")
    for c in dst.chunks_exact_mut(8) {
        c[0] *= s;
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_may_do_anything() {
        let t = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, t);
        assert!(m.get(&1).unwrap().elapsed().as_secs() < 60);
    }
}
