//! The consistent counterpart of the bad phases fixture: every
//! accounting surface agrees, so the pass must report nothing.

pub enum Phase {
    Load,
    Work,
    Drain,
}

impl Phase {
    pub const ALL: [Phase; 3] = [Phase::Load, Phase::Work, Phase::Drain];

    pub const fn index(self) -> usize {
        match self {
            Phase::Load => 0,
            Phase::Work => 1,
            Phase::Drain => 2,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Work => "work",
            Phase::Drain => "drain",
        }
    }
}

pub struct Timeline {
    seconds: [f64; 3],
}

impl Timeline {
    pub fn add(&mut self, phase: Phase, secs: f64) {
        self.seconds[phase.index()] += secs;
    }
}

pub fn charge(t: &mut Timeline, secs: f64) {
    t.add(Phase::Work, secs);
}
