//! Seeded phase-balance violations: a Phase enum whose accounting
//! surfaces disagree with each other. `tests/fixture.rs` pins each
//! finding's line.

pub enum Phase {
    Load,
    Work,
    Drain, // missing from ALL — fires here
}

impl Phase {
    // Declared length 2, enum has 3 — fires on the ALL line.
    pub const ALL: [Phase; 2] = [Phase::Load, Phase::Work];

    // Work maps outside 0..3 — fires on the fn line.
    pub const fn index(self) -> usize {
        match self {
            Phase::Load => 0,
            Phase::Work => 5,
            Phase::Drain => 1,
        }
    }

    // No Drain arm and no wildcard — fires on the fn line.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Work => "work",
        }
    }
}

pub struct Timeline {
    // Length 2 cannot hold 3 phases — fires on the field line.
    seconds: [f64; 2],
}

pub fn charge(t: &mut Timeline, secs: f64) {
    t.add(Phase::Cooldown, secs); // not a declared variant — fires here
}
