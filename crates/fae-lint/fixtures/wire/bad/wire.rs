//! Seeded wire-compat violations: a duplicated tag, a never-decoded
//! variant, a decode arm that resurrects the wrong variant, a variant
//! missing from `name`, an undeclared decode tag, and a tag outside
//! every declared range. `tests/fixture.rs` pins each finding's line.

pub enum Message {
    Hello,
    Data { bytes: u32 },
    Poll,
    Stats { count: u64 },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello => 0,
            Message::Data { .. } => 1,
            Message::Poll => 1,  // duplicate of Data's tag
            Message::Stats { .. } => 7, // outside every declared range
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello => "hello",
            Message::Data { .. } => "data",
            Message::Poll => "poll",
            // Stats has no name arm and there is no wildcard.
        }
    }

    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello | Message::Poll => {}
            Message::Data { bytes } => put_u32(out, *bytes),
            Message::Stats { count } => put_u64(out, *count),
        }
    }

    pub fn decode_payload(kind: u8, rd: &mut Reader) -> Result<Message, WireError> {
        Ok(match kind {
            0 => Message::Hello,
            1 => Message::Poll, // tag 1 encodes Data but decodes to Poll
            3 => Message::Data { bytes: rd.u32()? }, // undeclared tag
            other => return Err(WireError::Corrupt(other)),
        })
    }
}
