//! A miniature of fae-net::wire with fully consistent tags: every
//! variant tagged once, decode is the inverse of tag, name/encode
//! cover everything, and each tag sits inside a declared range. The
//! wire-compat pass must report nothing.

pub enum Message {
    Hello,
    Data { bytes: u32 },
    Poll,
    Stats { count: u64 },
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Hello => 0,
            Message::Data { .. } => 1,
            Message::Poll => 10,
            Message::Stats { .. } => 11,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello => "hello",
            Message::Data { .. } => "data",
            Message::Poll => "poll",
            Message::Stats { .. } => "stats",
        }
    }

    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Message::Hello | Message::Poll => {}
            Message::Data { bytes } => put_u32(out, *bytes),
            Message::Stats { count } => put_u64(out, *count),
        }
    }

    pub fn decode_payload(kind: u8, rd: &mut Reader) -> Result<Message, WireError> {
        Ok(match kind {
            0 => Message::Hello,
            1 => Message::Data { bytes: rd.u32()? },
            10 => Message::Poll,
            11 => Message::Stats { count: rd.u64()? },
            other => return Err(WireError::Corrupt(other)),
        })
    }
}
