//! Seeded metric-name violations: every flagged site below mints a name
//! the Prometheus exposition (`fae_*`, non-alphanumerics -> `_`) would
//! mangle or collide.
pub fn emit(t: &Telemetry, name: &str) {
    t.counter_add("Train.Steps", 1); // uppercase

    t.gauge_set("serve hit rate", 0.5); // spaces

    t.observe("serve-latency", 0.1); // dashes collapse into `_` collisions

    t.counter_add("net..joins", 1); // doubled separator

    // A dynamic name (the telemetry crate's own forwarding layer) is out
    // of lexical reach — documented gap, must not fire.
    t.counter_add(name, 1);

    // fae-lint: allow(metric-name, reason = "migration shim keeps the legacy dashed name one release")
    t.counter_add("legacy-name", 1);
}
