//! The same locks used safely: one global order, explicit release
//! before re-ordering, statement-scoped guards, and read-read sharding.
//! The pass must report nothing here.

pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

pub struct Shards {
    shards: Vec<RwLock<u64>>,
}

impl Pair {
    pub fn ordered_sum(&self) -> u64 {
        let a = self.left.lock();
        let b = self.right.lock();
        *a + *b
    }

    pub fn ordered_product(&self) -> u64 {
        let a = self.left.lock();
        let b = self.right.lock();
        *a * *b
    }

    pub fn staged(&self) -> u64 {
        let b = self.right.lock();
        let x = *b;
        drop(b);
        let a = self.left.lock();
        *a + x
    }

    pub fn scoped(&self) -> u64 {
        // The right guard is consumed inside the match, so taking left
        // afterwards overlaps nothing.
        let x = match self.right.lock() {
            Ok(g) => *g,
            Err(_) => 0,
        };
        let a = self.left.lock();
        *a + x
    }
}

impl Shards {
    pub fn read_two(&self) -> u64 {
        let a = self.shards.read();
        let b = self.shards.read(); // read-read on one class is fine
        *a + *b
    }
}
