//! Seeded lock-order violations: two functions acquire the same pair
//! of locks in opposite orders (a cycle), and one re-acquires a held
//! lock. `tests/fixture.rs` pins each finding's line.

pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.left.lock();
        let b = self.right.lock(); // left→right while holding left (line 13)
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.right.lock();
        let a = self.left.lock(); // right→left: closes the cycle (line 19)
        *a + *b
    }

    pub fn reentrant(&self) -> u64 {
        let a = self.left.lock();
        let b = self.left.lock(); // self-deadlock on Pair.left (line 25)
        *a + *b
    }
}
