//! Scaled dot-product attention pooling over variable-length behaviour
//! sequences — the TBSM head.
//!
//! For each sample, the query `q` (user + context) attends over the
//! sequence vectors `v_1..v_L` (item embeddings):
//!
//! `s_t = q·v_t / √d`, `α = softmax(s)`, `context = Σ_t α_t v_t`.
//!
//! Sequences are ragged, so they travel in CSR-of-vectors form
//! ([`SeqBatch`]).

use fae_nn::Tensor;

/// A ragged batch of vector sequences: sample `i` owns vectors
/// `offsets[i]..offsets[i+1]`, each of width `dim`, stored contiguously.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqBatch {
    /// Flat vector data, `total_vectors × dim` row-major.
    pub data: Vec<f32>,
    /// `batch + 1` boundaries, counted in vectors.
    pub offsets: Vec<usize>,
    /// Vector width.
    pub dim: usize,
}

impl SeqBatch {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequence length of sample `i`.
    pub fn seq_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Vector `t` of sample `i`.
    pub fn vector(&self, i: usize, t: usize) -> &[f32] {
        let v = self.offsets[i] + t;
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    fn vector_mut(&mut self, i: usize, t: usize) -> &mut [f32] {
        let v = self.offsets[i] + t;
        &mut self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// A zeroed batch with the same ragged layout.
    pub fn zeros_like(&self) -> SeqBatch {
        SeqBatch { data: vec![0.0; self.data.len()], offsets: self.offsets.clone(), dim: self.dim }
    }
}

struct Cache {
    seq: SeqBatch,
    query: Tensor,
    alphas: Vec<Vec<f32>>,
}

/// Differentiable attention pooling.
pub struct AttentionPool {
    cached: Option<Cache>,
}

impl AttentionPool {
    /// Creates the op.
    pub fn new() -> Self {
        Self { cached: None }
    }

    /// Pools each sample's sequence into one context vector. Samples with
    /// empty sequences yield a zero context.
    // Index-based loops: each iteration reads several parallel ragged
    // structures at (i, t); iterator chains obscure that symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn forward(&mut self, seq: &SeqBatch, query: &Tensor) -> Tensor {
        let (batch, d) = query.shape();
        assert_eq!(seq.len(), batch, "seq/query batch mismatch");
        assert_eq!(seq.dim, d, "seq/query width mismatch");
        let scale = 1.0 / (d as f32).sqrt();
        let mut ctx = Tensor::zeros(batch, d);
        let mut alphas = Vec::with_capacity(batch);
        for i in 0..batch {
            let ln = seq.seq_len(i);
            if ln == 0 {
                alphas.push(Vec::new());
                continue;
            }
            let q = query.row(i);
            let mut scores: Vec<f32> = (0..ln)
                .map(|t| q.iter().zip(seq.vector(i, t)).map(|(&a, &b)| a * b).sum::<f32>() * scale)
                .collect();
            // Stable softmax.
            let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                sum += *s;
            }
            for s in scores.iter_mut() {
                *s /= sum;
            }
            let c = ctx.row_mut(i);
            for (t, &a) in scores.iter().enumerate() {
                for (cv, &v) in c.iter_mut().zip(seq.vector(i, t)) {
                    *cv += a * v;
                }
            }
            alphas.push(scores);
        }
        self.cached = Some(Cache { seq: seq.clone(), query: query.clone(), alphas });
        ctx
    }

    /// Backward pass: returns gradients for the sequence vectors (same
    /// ragged layout) and the query.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(&mut self, grad_ctx: &Tensor) -> (SeqBatch, Tensor) {
        let Cache { seq, query, alphas } =
            // fae-lint: allow(no-panic, reason = "forward-before-backward is a call-order contract; fabricating a gradient here would corrupt training silently")
            self.cached.take().expect("AttentionPool::backward before forward");
        let (batch, d) = query.shape();
        assert_eq!(grad_ctx.shape(), (batch, d), "grad shape mismatch");
        let scale = 1.0 / (d as f32).sqrt();
        let mut d_seq = seq.zeros_like();
        let mut d_query = Tensor::zeros(batch, d);
        for i in 0..batch {
            let ln = seq.seq_len(i);
            if ln == 0 {
                continue;
            }
            let alpha = &alphas[i];
            let dc = grad_ctx.row(i);
            // dα_t = dc·v_t ; accumulate dv_t += α_t · dc.
            let mut d_alpha = vec![0.0f32; ln];
            for t in 0..ln {
                let v = seq.vector(i, t);
                d_alpha[t] = dc.iter().zip(v).map(|(&a, &b)| a * b).sum();
            }
            // Softmax backward: ds_t = α_t (dα_t − Σ_j α_j dα_j).
            let dot: f32 = alpha.iter().zip(&d_alpha).map(|(&a, &g)| a * g).sum();
            let d_scores: Vec<f32> =
                alpha.iter().zip(&d_alpha).map(|(&a, &g)| a * (g - dot)).collect();
            let q = query.row(i).to_vec();
            let dq = d_query.row_mut(i);
            for t in 0..ln {
                let ds = d_scores[t] * scale;
                let v: Vec<f32> = seq.vector(i, t).to_vec();
                let dv = d_seq.vector_mut(i, t);
                for c in 0..d {
                    dv[c] += alpha[t] * dc[c] + ds * q[c];
                    dq[c] += ds * v[c];
                }
            }
        }
        (d_seq, d_query)
    }
}

impl Default for AttentionPool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(offsets: Vec<usize>, data: Vec<f32>, dim: usize) -> SeqBatch {
        SeqBatch { data, offsets, dim }
    }

    #[test]
    fn single_vector_sequence_passes_through() {
        // With one vector, α = 1 and context == the vector.
        let s = seq(vec![0, 1], vec![3.0, -2.0], 2);
        let q = Tensor::from_vec(1, 2, vec![0.5, 0.5]);
        let mut att = AttentionPool::new();
        let c = att.forward(&s, &q);
        assert_eq!(c.as_slice(), &[3.0, -2.0]);
    }

    #[test]
    fn attention_prefers_aligned_vectors() {
        // Two vectors; the one aligned with the query should dominate.
        let s = seq(vec![0, 2], vec![10.0, 0.0, 0.0, 10.0], 2);
        let q = Tensor::from_vec(1, 2, vec![5.0, 0.0]);
        let mut att = AttentionPool::new();
        let c = att.forward(&s, &q);
        assert!(c.get(0, 0) > 9.0, "context {:?}", c.as_slice());
        assert!(c.get(0, 1) < 1.0);
    }

    #[test]
    fn empty_sequence_gives_zero_context() {
        let s = seq(vec![0, 0, 1], vec![1.0, 1.0], 2);
        let q = Tensor::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let mut att = AttentionPool::new();
        let c = att.forward(&s, &q);
        assert_eq!(c.row(0), &[0.0, 0.0]);
        assert_eq!(c.row(1), &[1.0, 1.0]);
        // Backward should not touch the empty sample.
        let (ds, dq) = att.backward(&Tensor::full(2, 2, 1.0));
        assert!(ds.data.iter().all(|v| v.is_finite()));
        assert_eq!(dq.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let dim = 3;
        let s = seq(
            vec![0, 2, 5],
            vec![
                0.5, -0.2, 0.8, /* s0 v0 */
                -0.4, 0.9, 0.1, /* s0 v1 */
                0.3, 0.3, -0.6, /* s1 v0 */
                0.7, -0.8, 0.2, /* s1 v1 */
                -0.1, 0.4, 0.5, /* s1 v2 */
            ],
            dim,
        );
        let q = Tensor::from_vec(2, 3, vec![0.6, -0.3, 0.2, -0.5, 0.1, 0.9]);
        let objective = |s: &SeqBatch, q: &Tensor| {
            let mut att = AttentionPool::new();
            att.forward(s, q).sum()
        };
        let mut att = AttentionPool::new();
        let c = att.forward(&s, &q);
        let (ds, dq) = att.backward(&Tensor::full(c.rows(), c.cols(), 1.0));
        let eps = 1e-3;
        for k in 0..s.data.len() {
            let mut sp = s.clone();
            sp.data[k] += eps;
            let mut sm = s.clone();
            sm.data[k] -= eps;
            let numeric = (objective(&sp, &q) - objective(&sm, &q)) / (2.0 * eps);
            assert!(
                (ds.data[k] - numeric).abs() / numeric.abs().max(1.0) < 2e-2,
                "seq grad {k}: analytic {} vs numeric {numeric}",
                ds.data[k]
            );
        }
        for r in 0..2 {
            for c in 0..3 {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + eps);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - eps);
                let numeric = (objective(&s, &qp) - objective(&s, &qm)) / (2.0 * eps);
                assert!(
                    (dq.get(r, c) - numeric).abs() / numeric.abs().max(1.0) < 2e-2,
                    "query grad ({r},{c}): analytic {} vs numeric {numeric}",
                    dq.get(r, c)
                );
            }
        }
    }
}
