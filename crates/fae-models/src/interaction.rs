//! DLRM's pairwise dot-product feature interaction.
//!
//! Given `F` feature vectors per sample (the bottom-MLP output plus one
//! pooled embedding per table, all of width `d`), the interaction emits
//! the bottom-MLP output concatenated with the `F·(F-1)/2` pairwise dot
//! products — the `dot` interaction of the open-source DLRM.

use fae_nn::{lanes, Tensor};

/// Differentiable pairwise-dot interaction over `features` tensors of
/// identical `batch × d` shape. `features[0]` is the bottom-MLP output
/// that also passes through to the output.
pub struct Interaction {
    cached: Option<Vec<Tensor>>,
}

impl Interaction {
    /// Creates the op.
    pub fn new() -> Self {
        Self { cached: None }
    }

    /// Output width for `f` features of width `d`: `d + f·(f-1)/2`.
    pub fn out_width(f: usize, d: usize) -> usize {
        d + f * (f - 1) / 2
    }

    /// Forward pass; caches inputs for backward.
    pub fn forward(&mut self, features: Vec<Tensor>) -> Tensor {
        let f = features.len();
        assert!(f >= 2, "interaction needs at least two features");
        let (batch, d) = features[0].shape();
        assert!(features.iter().all(|t| t.shape() == (batch, d)), "feature shape mismatch");
        let mut out = Tensor::zeros(batch, Self::out_width(f, d));
        for b in 0..batch {
            let row = out.row_mut(b);
            row[..d].copy_from_slice(features[0].row(b));
            let mut k = d;
            for i in 0..f {
                for j in (i + 1)..f {
                    // 8-lane dot reorders the f32 sum (DESIGN.md §14).
                    row[k] = lanes::dot(features[i].row(b), features[j].row(b));
                    k += 1;
                }
            }
        }
        self.cached = Some(features);
        out
    }

    /// Backward pass: splits the upstream gradient back onto each feature.
    pub fn backward(&mut self, grad_out: &Tensor) -> Vec<Tensor> {
        // fae-lint: allow(no-panic, reason = "forward-before-backward is a call-order contract; fabricating a gradient here would corrupt training silently")
        let features = self.cached.take().expect("Interaction::backward before forward");
        let f = features.len();
        let (batch, d) = features[0].shape();
        assert_eq!(grad_out.shape(), (batch, Self::out_width(f, d)), "grad shape mismatch");
        let mut grads: Vec<Tensor> = (0..f).map(|_| Tensor::zeros(batch, d)).collect();
        for b in 0..batch {
            let g = grad_out.row(b);
            // Pass-through part feeds features[0].
            grads[0].row_mut(b).copy_from_slice(&g[..d]);
            let mut k = d;
            for i in 0..f {
                // d(vi·vj)/dvi = vj, /dvj = vi — accumulated on whole row
                // slices (elementwise axpy keeps the per-element addition
                // order of the scalar loop it replaced).
                let (left, right) = grads.split_at_mut(i + 1);
                let gi_t = &mut left[i];
                for (jo, gj_t) in right.iter_mut().enumerate() {
                    let j = i + 1 + jo;
                    let gd = g[k];
                    k += 1;
                    if gd == 0.0 {
                        continue;
                    }
                    lanes::axpy(gi_t.row_mut(b), gd, features[j].row(b));
                    lanes::axpy(gj_t.row_mut(b), gd, features[i].row(b));
                }
            }
        }
        grads
    }
}

impl Default for Interaction {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_width_formula() {
        assert_eq!(Interaction::out_width(3, 4), 4 + 3);
        assert_eq!(Interaction::out_width(27, 16), 16 + 351);
    }

    #[test]
    fn forward_known_values() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        let c = Tensor::from_vec(1, 2, vec![5.0, 6.0]);
        let mut op = Interaction::new();
        let out = op.forward(vec![a, b, c]);
        // [a0, a1, a·b, a·c, b·c] = [1, 2, 11, 17, 39]
        assert_eq!(out.as_slice(), &[1.0, 2.0, 11.0, 17.0, 39.0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mk = |vals: &[f32]| Tensor::from_vec(2, 3, vals.to_vec());
        let f0 = mk(&[0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);
        let f1 = mk(&[1.0, 0.2, -0.5, -1.2, 0.8, 0.1]);
        let f2 = mk(&[-0.3, 0.9, 0.4, 0.6, -1.1, 0.2]);
        let feats = vec![f0, f1, f2];
        let mut op = Interaction::new();
        let out = op.forward(feats.clone());
        let ones = Tensor::full(out.rows(), out.cols(), 1.0);
        let grads = op.backward(&ones);
        let eps = 1e-3;
        let objective = |feats: &[Tensor]| {
            let mut op = Interaction::new();
            op.forward(feats.to_vec()).sum()
        };
        for fi in 0..3 {
            for b in 0..2 {
                for c in 0..3 {
                    let mut pp = feats.clone();
                    pp[fi].set(b, c, feats[fi].get(b, c) + eps);
                    let mut pm = feats.clone();
                    pm[fi].set(b, c, feats[fi].get(b, c) - eps);
                    let numeric = (objective(&pp) - objective(&pm)) / (2.0 * eps);
                    let analytic = grads[fi].get(b, c);
                    assert!(
                        (numeric - analytic).abs() / numeric.abs().max(1.0) < 1e-2,
                        "feature {fi} ({b},{c}): analytic {analytic} vs numeric {numeric}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "feature shape mismatch")]
    fn rejects_mixed_widths() {
        let a = Tensor::zeros(1, 2);
        let b = Tensor::zeros(1, 3);
        Interaction::new().forward(vec![a, b]);
    }
}
