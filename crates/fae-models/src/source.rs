//! Device-agnostic embedding access.
//!
//! Models address embeddings by *global* row id; an [`EmbeddingSource`]
//! decides where the bytes actually live. [`MasterEmbeddings`] is the
//! CPU-resident full-table source used by the baseline and by cold
//! mini-batches; `fae-core` provides the hot-replica source that remaps
//! global ids into the compact GPU bags.

use fae_nn::Tensor;
use rand::Rng;

use fae_data::WorkloadSpec;
use fae_embed::{EmbeddingTable, HotColdPartition, SparseGrad, TieredTable};

/// Where embedding rows live and how they are read/updated.
pub trait EmbeddingSource {
    /// Sum-pooled bag lookup into table `t` (global row ids, CSR form).
    fn lookup(&self, t: usize, indices: &[u32], offsets: &[usize]) -> Tensor;

    /// Applies one sparse SGD step per table; `grads[t]` is keyed by
    /// global row ids.
    fn apply_sparse_grads(&mut self, grads: &[SparseGrad], lr: f32);

    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Number of tables.
    fn num_tables(&self) -> usize;
}

/// The full tables, resident in host memory (the paper's baseline
/// placement, Fig 3).
///
/// Storage has two modes. Untiered (the default): one f32
/// [`EmbeddingTable`] per spec entry. Tiered (opt-in via
/// `TrainConfig.quantize_cold`): one [`TieredTable`] per entry, with the
/// calibrator-pinned hot rows exact f32 and the cold majority int8
/// (DESIGN.md §14). The row-level accessors ([`MasterEmbeddings::row`],
/// [`MasterEmbeddings::set_row`], [`MasterEmbeddings::copy_row_into`])
/// work in both modes; the whole-table views
/// ([`MasterEmbeddings::tables`] / [`MasterEmbeddings::tables_mut`])
/// require the untiered mode — they return [`TieredViewError`] in tiered
/// mode — and are kept for the distributed paths, which do not support
/// quantized masters.
pub struct MasterEmbeddings {
    /// Untiered storage; empty when `tiered` is `Some`.
    tables: Vec<EmbeddingTable>,
    /// Tiered storage (hot f32 + cold int8), one per table.
    tiered: Option<Vec<TieredTable>>,
    dim: usize,
}

/// A whole-table f32 view was requested from a tiered master. Cold rows
/// are stored int8 there, so no contiguous f32 slice exists; callers
/// should fall back to the row-level accessors or
/// [`MasterEmbeddings::snapshot_tables`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TieredViewError;

impl std::fmt::Display for TieredViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(
            "whole-table f32 views do not exist in tiered (quantize-cold) storage; \
             use the row-level accessors or snapshot_tables()",
        )
    }
}

impl std::error::Error for TieredViewError {}

impl MasterEmbeddings {
    /// Initialises one table per spec entry.
    pub fn from_spec(spec: &WorkloadSpec, rng: &mut impl Rng) -> Self {
        let tables = spec
            .tables
            .iter()
            .map(|t| EmbeddingTable::new(t.rows, spec.embedding_dim, rng))
            .collect();
        Self { tables, tiered: None, dim: spec.embedding_dim }
    }

    /// Initialises tiered storage directly from the RNG: hot rows are
    /// bit-identical to [`MasterEmbeddings::from_spec`] under the same
    /// seed (identical draw order), and cold rows are quantized from a
    /// one-row scratch buffer, so the full f32 footprint is never paid.
    pub fn from_spec_tiered(
        spec: &WorkloadSpec,
        partitions: &[HotColdPartition],
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(partitions.len(), spec.tables.len(), "one partition per table");
        let tiered = spec
            .tables
            .iter()
            .zip(partitions)
            .map(|(t, p)| TieredTable::new(t.rows, spec.embedding_dim, p, rng))
            .collect();
        Self { tables: Vec::new(), tiered: Some(tiered), dim: spec.embedding_dim }
    }

    /// Wraps existing tables.
    pub fn from_tables(tables: Vec<EmbeddingTable>) -> Self {
        assert!(!tables.is_empty(), "need at least one table");
        let dim = tables[0].dim();
        assert!(tables.iter().all(|t| t.dim() == dim), "mixed embedding dims");
        Self { tables, tiered: None, dim }
    }

    /// Converts untiered storage in place: hot rows move into the f32
    /// arena bit-for-bit, cold rows quantize to int8. Used after a
    /// checkpoint restore, where the f32 tables already exist.
    pub fn quantize_cold_tier(&mut self, partitions: &[HotColdPartition]) {
        assert!(self.tiered.is_none(), "already tiered");
        assert_eq!(partitions.len(), self.tables.len(), "one partition per table");
        let tiered = self
            .tables
            .drain(..)
            .zip(partitions)
            .map(|(t, p)| TieredTable::from_table(&t, p))
            .collect();
        self.tiered = Some(tiered);
    }

    /// True when cold rows are stored quantized.
    pub fn is_tiered(&self) -> bool {
        self.tiered.is_some()
    }

    /// Rows in table `t` (works in both storage modes).
    pub fn rows_in(&self, t: usize) -> usize {
        match &self.tiered {
            Some(tiered) => tiered[t].rows(),
            None => self.tables[t].rows(),
        }
    }

    /// Immutable view of the untiered tables, or [`TieredViewError`] in
    /// tiered mode — whole-table f32 views do not exist there; use the
    /// row-level accessors or [`MasterEmbeddings::snapshot_tables`].
    pub fn tables(&self) -> Result<&[EmbeddingTable], TieredViewError> {
        match self.tiered {
            Some(_) => Err(TieredViewError),
            None => Ok(&self.tables),
        }
    }

    /// Mutable view (used by the distributed parameter paths). Returns
    /// [`TieredViewError`] in tiered mode, like
    /// [`MasterEmbeddings::tables`].
    pub fn tables_mut(&mut self) -> Result<&mut [EmbeddingTable], TieredViewError> {
        match self.tiered {
            Some(_) => Err(TieredViewError),
            None => Ok(&mut self.tables),
        }
    }

    /// One row of table `t`, dequantized if cold.
    pub fn row(&self, t: usize, idx: u32) -> Vec<f32> {
        match &self.tiered {
            Some(tiered) => tiered[t].row_f32(idx),
            None => self.tables[t].row(idx).to_vec(),
        }
    }

    /// Copies one row of table `t` into `out`, dequantizing if cold.
    pub fn copy_row_into(&self, t: usize, idx: u32, out: &mut [f32]) {
        match &self.tiered {
            Some(tiered) => tiered[t].copy_row_into(idx, out),
            None => out.copy_from_slice(self.tables[t].row(idx)),
        }
    }

    /// Overwrites one row of table `t` (requantizing if cold).
    pub fn set_row(&mut self, t: usize, idx: u32, values: &[f32]) {
        match &mut self.tiered {
            Some(tiered) => tiered[t].set_row(idx, values),
            None => self.tables[t].set_row(idx, values),
        }
    }

    /// Materializes f32 snapshots of every table (checkpointing). In
    /// tiered mode this transiently pays the full f32 footprint.
    pub fn snapshot_tables(&self) -> Vec<EmbeddingTable> {
        match &self.tiered {
            Some(tiered) => tiered.iter().map(|t| t.to_table()).collect(),
            None => self.tables.clone(),
        }
    }

    /// Total resident bytes of all tables — honest per mode: f32 weights
    /// when untiered; hot f32 + cold int8 codes + per-row metadata when
    /// tiered.
    pub fn total_bytes(&self) -> usize {
        match &self.tiered {
            Some(tiered) => tiered.iter().map(|t| t.size_bytes()).sum(),
            None => self.tables.iter().map(|t| t.size_bytes()).sum(),
        }
    }
}

impl EmbeddingSource for MasterEmbeddings {
    fn lookup(&self, t: usize, indices: &[u32], offsets: &[usize]) -> Tensor {
        match &self.tiered {
            Some(tiered) => tiered[t].lookup_bag(indices, offsets),
            None => self.tables[t].lookup_bag(indices, offsets),
        }
    }

    fn apply_sparse_grads(&mut self, grads: &[SparseGrad], lr: f32) {
        assert_eq!(grads.len(), self.num_tables(), "one gradient per table");
        match &mut self.tiered {
            Some(tiered) => {
                for (table, g) in tiered.iter_mut().zip(grads) {
                    table.sgd_step_sparse(g, lr);
                }
            }
            None => {
                for (table, g) in self.tables.iter_mut().zip(grads) {
                    table.sgd_step_sparse(g, lr);
                }
            }
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_tables(&self) -> usize {
        match &self.tiered {
            Some(tiered) => tiered.len(),
            None => self.tables.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_spec_builds_matching_tables() {
        let spec = WorkloadSpec::tiny_test();
        let mut rng = StdRng::seed_from_u64(1);
        let m = MasterEmbeddings::from_spec(&spec, &mut rng);
        assert_eq!(m.num_tables(), spec.tables.len());
        assert_eq!(m.dim(), spec.embedding_dim);
        assert_eq!(m.total_bytes(), spec.embedding_bytes());
    }

    fn tiny_partitions(spec: &WorkloadSpec) -> Vec<HotColdPartition> {
        use fae_embed::AccessCounter;
        spec.tables
            .iter()
            .map(|t| {
                let mut c = AccessCounter::new(t.rows);
                for r in (0..t.rows).step_by(4) {
                    c.record(r as u32);
                    c.record(r as u32);
                }
                HotColdPartition::from_counts(&c, 2)
            })
            .collect()
    }

    #[test]
    fn tiered_master_keeps_hot_rows_bit_identical_and_shrinks() {
        let spec = WorkloadSpec::tiny_test();
        let parts = tiny_partitions(&spec);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let dense = MasterEmbeddings::from_spec(&spec, &mut r1);
        let tiered = MasterEmbeddings::from_spec_tiered(&spec, &parts, &mut r2);
        assert!(tiered.is_tiered() && !dense.is_tiered());
        assert!(
            tiered.total_bytes() < dense.total_bytes(),
            "int8 cold tier must shrink the master: {} vs {}",
            tiered.total_bytes(),
            dense.total_bytes()
        );
        for (t, p) in parts.iter().enumerate() {
            for &h in p.hot_ids() {
                assert_eq!(tiered.row(t, h), dense.row(t, h), "hot row {h} of table {t}");
            }
        }
        // Snapshots dequantize every table back to full f32 shape.
        let snaps = tiered.snapshot_tables();
        assert_eq!(snaps.len(), spec.tables.len());
        for (s, t) in snaps.iter().zip(&spec.tables) {
            assert_eq!(s.rows(), t.rows);
        }
    }

    #[test]
    fn tiered_master_lookup_and_update_dispatch() {
        let spec = WorkloadSpec::tiny_test();
        let parts = tiny_partitions(&spec);
        let mut rng = StdRng::seed_from_u64(10);
        let mut m = MasterEmbeddings::from_spec_tiered(&spec, &parts, &mut rng);
        let before = m.lookup(1, &[0], &[0, 1]);
        let mut grads: Vec<SparseGrad> =
            (0..m.num_tables()).map(|_| SparseGrad::new(m.dim())).collect();
        grads[1].accumulate(0, &vec![1.0; m.dim()]);
        m.apply_sparse_grads(&grads, 0.5);
        let after = m.lookup(1, &[0], &[0, 1]);
        // Row 0 is hot (multiple of 4): the update is exact f32.
        for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
            assert_eq!(b - 0.5, *a);
        }
    }

    #[test]
    fn whole_table_view_errors_in_tiered_mode() {
        let spec = WorkloadSpec::tiny_test();
        let parts = tiny_partitions(&spec);
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = MasterEmbeddings::from_spec_tiered(&spec, &parts, &mut rng);
        assert_eq!(m.tables().err(), Some(TieredViewError));
        assert_eq!(m.tables_mut().err(), Some(TieredViewError));
        assert!(TieredViewError.to_string().contains("tiered"));
        let mut r2 = StdRng::seed_from_u64(11);
        let dense = MasterEmbeddings::from_spec(&spec, &mut r2);
        assert!(dense.tables().is_ok());
    }

    #[test]
    fn quantize_cold_tier_converts_in_place() {
        let spec = WorkloadSpec::tiny_test();
        let parts = tiny_partitions(&spec);
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = MasterEmbeddings::from_spec(&spec, &mut rng);
        let hot_before: Vec<f32> = m.row(0, 0);
        let bytes_before = m.total_bytes();
        m.quantize_cold_tier(&parts);
        assert!(m.is_tiered());
        assert_eq!(m.row(0, 0), hot_before, "hot rows move bit-for-bit");
        assert!(m.total_bytes() < bytes_before);
    }

    #[test]
    fn lookup_and_update_route_to_right_table() {
        let spec = WorkloadSpec::tiny_test();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = MasterEmbeddings::from_spec(&spec, &mut rng);
        let before = m.lookup(1, &[3], &[0, 1]);
        let mut grads: Vec<SparseGrad> =
            (0..m.num_tables()).map(|_| SparseGrad::new(m.dim())).collect();
        grads[1].accumulate(3, &vec![1.0; m.dim()]);
        m.apply_sparse_grads(&grads, 0.5);
        let after = m.lookup(1, &[3], &[0, 1]);
        for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
        // Other tables untouched.
        let t0 = m.lookup(0, &[3], &[0, 1]);
        assert!(t0.all_finite());
    }
}
