//! Device-agnostic embedding access.
//!
//! Models address embeddings by *global* row id; an [`EmbeddingSource`]
//! decides where the bytes actually live. [`MasterEmbeddings`] is the
//! CPU-resident full-table source used by the baseline and by cold
//! mini-batches; `fae-core` provides the hot-replica source that remaps
//! global ids into the compact GPU bags.

use fae_nn::Tensor;
use rand::Rng;

use fae_data::WorkloadSpec;
use fae_embed::{EmbeddingTable, SparseGrad};

/// Where embedding rows live and how they are read/updated.
pub trait EmbeddingSource {
    /// Sum-pooled bag lookup into table `t` (global row ids, CSR form).
    fn lookup(&self, t: usize, indices: &[u32], offsets: &[usize]) -> Tensor;

    /// Applies one sparse SGD step per table; `grads[t]` is keyed by
    /// global row ids.
    fn apply_sparse_grads(&mut self, grads: &[SparseGrad], lr: f32);

    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Number of tables.
    fn num_tables(&self) -> usize;
}

/// The full tables, resident in host memory (the paper's baseline
/// placement, Fig 3).
pub struct MasterEmbeddings {
    tables: Vec<EmbeddingTable>,
    dim: usize,
}

impl MasterEmbeddings {
    /// Initialises one table per spec entry.
    pub fn from_spec(spec: &WorkloadSpec, rng: &mut impl Rng) -> Self {
        let tables = spec
            .tables
            .iter()
            .map(|t| EmbeddingTable::new(t.rows, spec.embedding_dim, rng))
            .collect();
        Self { tables, dim: spec.embedding_dim }
    }

    /// Wraps existing tables.
    pub fn from_tables(tables: Vec<EmbeddingTable>) -> Self {
        assert!(!tables.is_empty(), "need at least one table");
        let dim = tables[0].dim();
        assert!(tables.iter().all(|t| t.dim() == dim), "mixed embedding dims");
        Self { tables, dim }
    }

    /// Immutable view of the tables.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// Mutable view (used by hot-bag write-back/refresh in `fae-core`).
    pub fn tables_mut(&mut self) -> &mut [EmbeddingTable] {
        &mut self.tables
    }

    /// Total bytes of all tables.
    pub fn total_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.size_bytes()).sum()
    }
}

impl EmbeddingSource for MasterEmbeddings {
    fn lookup(&self, t: usize, indices: &[u32], offsets: &[usize]) -> Tensor {
        self.tables[t].lookup_bag(indices, offsets)
    }

    fn apply_sparse_grads(&mut self, grads: &[SparseGrad], lr: f32) {
        assert_eq!(grads.len(), self.tables.len(), "one gradient per table");
        for (table, g) in self.tables.iter_mut().zip(grads) {
            table.sgd_step_sparse(g, lr);
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_tables(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_spec_builds_matching_tables() {
        let spec = WorkloadSpec::tiny_test();
        let mut rng = StdRng::seed_from_u64(1);
        let m = MasterEmbeddings::from_spec(&spec, &mut rng);
        assert_eq!(m.num_tables(), spec.tables.len());
        assert_eq!(m.dim(), spec.embedding_dim);
        assert_eq!(m.total_bytes(), spec.embedding_bytes());
    }

    #[test]
    fn lookup_and_update_route_to_right_table() {
        let spec = WorkloadSpec::tiny_test();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = MasterEmbeddings::from_spec(&spec, &mut rng);
        let before = m.lookup(1, &[3], &[0, 1]);
        let mut grads: Vec<SparseGrad> =
            (0..m.num_tables()).map(|_| SparseGrad::new(m.dim())).collect();
        grads[1].accumulate(3, &vec![1.0; m.dim()]);
        m.apply_sparse_grads(&grads, 0.5);
        let after = m.lookup(1, &[3], &[0, 1]);
        for (b, a) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
        // Other tables untouched.
        let t0 = m.lookup(0, &[3], &[0, 1]);
        assert!(t0.all_finite());
    }
}
