//! Bridge from workload specs to `fae-sysmodel` cost profiles.
//!
//! Keeping this in `fae-models` ties the cost model to the *same* model
//! shapes the numeric experiments use: MLP widths, interaction width and
//! attention cost are derived from the exact constructors in
//! [`crate::Dlrm`] / [`crate::Tbsm`].

use fae_data::{WorkloadKind, WorkloadSpec};
use fae_sysmodel::ModelProfile;

use crate::interaction::Interaction;

/// Builds the cost-model profile for `spec`, with `hot_emb_bytes` set to
/// the hot-bag footprint chosen by the calibrator (0 for pure baseline
/// costing).
pub fn profile_for(spec: &WorkloadSpec, hot_emb_bytes: f64) -> ModelProfile {
    let d = spec.embedding_dim;
    let (top_in, extra_flops) = match spec.kind {
        WorkloadKind::Dlrm => (Interaction::out_width(spec.tables.len() + 1, d), 0.0),
        WorkloadKind::Tbsm => {
            // Attention per sample: L score dots + softmax + weighted sum
            // ≈ L · 4d FLOPs at the mean sequence length.
            let mean_seq = spec.tables[0].lookups_per_input as f64 / 2.0;
            (2 * d, mean_seq * 4.0 * d as f64)
        }
    };
    let mut top_mlp = spec.top_mlp.clone();
    top_mlp[0] = top_in;
    // TBSM pays heavy per-sample host costs that DLRM does not: ragged
    // behaviour sequences are re-batched on the host every step (all
    // modes), and the CPU embedding path dispatches per-timestep ops
    // (baseline/cold only). Values calibrated against Table IV's Taobao
    // rows (≈153 ms/step baseline, ≈42 ms/step FAE-hot at batch 256).
    let (host_prep, cpu_embed) = match spec.kind {
        WorkloadKind::Dlrm => (0.0, 0.0),
        WorkloadKind::Tbsm => (0.15e-3, 0.40e-3),
    };
    ModelProfile {
        dense_features: spec.dense_features,
        bottom_mlp: spec.bottom_mlp.clone(),
        top_mlp,
        emb_dim: d,
        num_tables: spec.tables.len(),
        lookups_per_sample: spec.lookups_per_input(),
        extra_flops_per_sample: extra_flops,
        hot_emb_bytes,
        full_emb_bytes: spec.embedding_bytes() as f64,
        host_prep_per_sample: host_prep,
        cpu_embed_per_sample: cpu_embed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_profile_uses_interaction_width() {
        let spec = WorkloadSpec::rmc2_kaggle();
        let p = profile_for(&spec, 256e6);
        assert_eq!(p.top_mlp[0], Interaction::out_width(27, 16));
        assert_eq!(p.lookups_per_sample, 26);
        assert_eq!(p.extra_flops_per_sample, 0.0);
        assert_eq!(p.hot_emb_bytes, 256e6);
        assert_eq!(p.full_emb_bytes, spec.embedding_bytes() as f64);
    }

    #[test]
    fn tbsm_profile_carries_attention_flops() {
        let spec = WorkloadSpec::rmc1_taobao();
        let p = profile_for(&spec, 0.0);
        assert_eq!(p.top_mlp[0], 32);
        assert!(p.extra_flops_per_sample > 0.0);
        assert_eq!(p.lookups_per_sample, 43);
    }

    #[test]
    fn paper_scale_profiles_have_paper_scale_bytes() {
        let p = profile_for(&WorkloadSpec::rmc3_terabyte_paper(), 78e6);
        assert!(p.full_emb_bytes > 40e9, "terabyte profile {} B", p.full_emb_bytes);
    }
}
