//! Deep Learning Recommendation Model (Naumov et al., the paper's RMC2 and
//! RMC3 workloads).
//!
//! Architecture, per sample:
//!
//! ```text
//! dense features ──► bottom MLP ─┐
//! sparse field 1 ──► emb bag 1 ──┤
//!        ...                     ├──► pairwise-dot interaction ──► top MLP ──► σ
//! sparse field T ──► emb bag T ──┘
//! ```
//!
//! The top MLP's input width is derived from the interaction output
//! (`d + (T+1)·T/2`), replacing the nominal first entry of the spec's
//! `top_mlp`; hidden/output widths follow the spec.

use rand::Rng;

use fae_data::{MiniBatch, TableIndices, WorkloadSpec};
use fae_embed::SparseGrad;
use fae_nn::{Activation, Layer, Mlp, Tensor};

use crate::interaction::Interaction;
use crate::source::EmbeddingSource;
use crate::train::RecModel;

/// Scatters a pooled-bag output gradient back onto the rows each sample's
/// bag touched (the embedding half of the backward pass).
pub(crate) fn scatter_bag_grad(csr: &TableIndices, grad: &Tensor) -> SparseGrad {
    let mut sg = SparseGrad::new(grad.cols());
    for b in 0..csr.len() {
        let g = grad.row(b);
        for &idx in csr.bag(b) {
            sg.accumulate(idx, g);
        }
    }
    sg
}

/// The DLRM model.
pub struct Dlrm {
    bottom: Mlp,
    top: Mlp,
    interaction: Interaction,
    num_tables: usize,
    emb_dim: usize,
    cached_sparse: Option<Vec<TableIndices>>,
}

impl Dlrm {
    /// Builds a DLRM matching `spec`. The spec's bottom MLP must end at
    /// the embedding dimension (as the paper's configs do).
    pub fn from_spec(spec: &WorkloadSpec, rng: &mut impl Rng) -> Self {
        assert_eq!(
            spec.bottom_mlp.last().copied(),
            Some(spec.embedding_dim),
            "bottom MLP must emit embedding_dim features"
        );
        let num_tables = spec.tables.len();
        let interaction_width = Interaction::out_width(num_tables + 1, spec.embedding_dim);
        let mut top_sizes = spec.top_mlp.clone();
        top_sizes[0] = interaction_width;
        Self {
            bottom: Mlp::new(&spec.bottom_mlp, Activation::Relu, rng),
            top: Mlp::new(&top_sizes, Activation::Sigmoid, rng),
            interaction: Interaction::new(),
            num_tables,
            emb_dim: spec.embedding_dim,
            cached_sparse: None,
        }
    }

    /// Embedding dimension.
    pub fn emb_dim(&self) -> usize {
        self.emb_dim
    }
}

impl RecModel for Dlrm {
    fn forward(&mut self, batch: &MiniBatch, emb: &dyn EmbeddingSource) -> Tensor {
        assert_eq!(batch.sparse.len(), self.num_tables, "table count mismatch");
        let n = batch.len();
        let dense = Tensor::from_vec(n, batch.dense_width, batch.dense.clone());
        let bottom_out = self.bottom.forward(&dense);
        let mut features = Vec::with_capacity(self.num_tables + 1);
        features.push(bottom_out);
        for (t, csr) in batch.sparse.iter().enumerate() {
            features.push(emb.lookup(t, &csr.indices, &csr.offsets));
        }
        let inter = self.interaction.forward(features);
        self.cached_sparse = Some(batch.sparse.clone());
        self.top.forward(&inter)
    }

    fn backward(&mut self, grad: &Tensor) -> Vec<SparseGrad> {
        // fae-lint: allow(no-panic, reason = "forward-before-backward is a call-order contract; fabricating a gradient here would corrupt training silently")
        let sparse = self.cached_sparse.take().expect("Dlrm::backward called before forward");
        let d_inter = self.top.backward(grad);
        let feature_grads = self.interaction.backward(&d_inter);
        self.bottom.backward(&feature_grads[0]);
        feature_grads[1..].iter().zip(&sparse).map(|(g, csr)| scatter_bag_grad(csr, g)).collect()
    }

    fn sgd_step(&mut self, lr: f32) {
        self.bottom.sgd_step(lr);
        self.top.sgd_step(lr);
    }

    fn zero_grad(&mut self) {
        self.bottom.zero_grad();
        self.top.zero_grad();
    }

    fn dense_param_count(&self) -> usize {
        self.bottom.param_count() + self.top.param_count()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        self.bottom.write_params(out);
        self.top.write_params(out);
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let n = self.bottom.read_params(src);
        n + self.top.read_params(&src[n..])
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        self.bottom.write_grads(out);
        self.top.write_grads(out);
    }

    fn read_grads(&mut self, src: &[f32]) -> usize {
        let n = self.bottom.read_grads(src);
        n + self.top.read_grads(&src[n..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MasterEmbeddings;
    use crate::train::{evaluate, train_step};
    use fae_data::{generate, BatchKind, GenOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (WorkloadSpec, Dlrm, MasterEmbeddings, fae_data::Dataset) {
        let spec = WorkloadSpec::tiny_test();
        let mut rng = StdRng::seed_from_u64(42);
        let model = Dlrm::from_spec(&spec, &mut rng);
        let emb = MasterEmbeddings::from_spec(&spec, &mut rng);
        let ds = generate(&spec, &GenOptions::sized(7, 2_000));
        (spec, model, emb, ds)
    }

    #[test]
    fn forward_emits_probabilities() {
        let (_, mut model, emb, ds) = setup();
        let mb = MiniBatch::gather(&ds, &(0..32).collect::<Vec<_>>(), BatchKind::Unclassified);
        let pred = model.forward(&mb, &emb);
        assert_eq!(pred.shape(), (32, 1));
        assert!(pred.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn backward_produces_grads_for_exactly_touched_rows() {
        let (_, mut model, emb, ds) = setup();
        let mb = MiniBatch::gather(&ds, &[0, 1], BatchKind::Unclassified);
        let pred = model.forward(&mb, &emb);
        let grads = model.backward(&Tensor::full(pred.rows(), 1, 1.0));
        assert_eq!(grads.len(), 4);
        for (t, g) in grads.iter().enumerate() {
            let touched: std::collections::BTreeSet<u32> =
                mb.sparse[t].indices.iter().copied().collect();
            assert_eq!(g.nnz_rows(), touched.len(), "table {t}");
            for (row, _) in g.iter() {
                assert!(touched.contains(&row));
            }
        }
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let (_, mut model, mut emb, ds) = setup();
        let n = ds.len();
        let batches: Vec<MiniBatch> = (0..n / 64)
            .map(|i| {
                let ids: Vec<usize> = (i * 64..(i + 1) * 64).collect();
                MiniBatch::gather(&ds, &ids, BatchKind::Unclassified)
            })
            .collect();
        let initial = evaluate(&mut model, &emb, &batches[..4]);
        for _ in 0..3 {
            for b in &batches {
                train_step(&mut model, &mut emb, b, 0.1);
            }
        }
        let fin = evaluate(&mut model, &emb, &batches[..4]);
        assert!(fin.loss < initial.loss, "loss {} -> {}", initial.loss, fin.loss);
        assert!(fin.accuracy > 0.60, "accuracy only {}", fin.accuracy);
    }

    #[test]
    fn scatter_bag_grad_matches_hand_count() {
        let mut csr = TableIndices::new();
        csr.push_bag(&[1, 2]);
        csr.push_bag(&[2]);
        let grad = Tensor::from_vec(2, 2, vec![1.0, 1.0, 10.0, 10.0]);
        let sg = scatter_bag_grad(&csr, &grad);
        assert_eq!(sg.get(1), Some(&[1.0, 1.0][..]));
        assert_eq!(sg.get(2), Some(&[11.0, 11.0][..]));
    }

    #[test]
    #[should_panic(expected = "bottom MLP must emit")]
    fn rejects_mismatched_bottom_mlp() {
        let mut spec = WorkloadSpec::tiny_test();
        spec.bottom_mlp = vec![4, 16, 7]; // 7 != embedding_dim 8
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Dlrm::from_spec(&spec, &mut rng);
    }
}
