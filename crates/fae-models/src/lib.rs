//! # fae-models — DLRM and TBSM on the fae-nn / fae-embed substrates
//!
//! Implements the two open-source recommendation models the paper trains
//! (Table I):
//!
//! * [`Dlrm`] — bottom MLP over dense features, per-table embedding bags,
//!   the pairwise dot-product feature interaction, and a sigmoid top MLP,
//! * [`Tbsm`] — the time-based sequence model: item/category behaviour
//!   sequences attended against a user+context query, on top of the same
//!   embedding machinery.
//!
//! Both models look up embeddings through the [`EmbeddingSource`] trait so
//! that exactly the same model code runs against the CPU master tables
//! (baseline / cold mini-batches) or against the replicated hot bags
//! (FAE hot mini-batches) — mirroring how the paper reuses the PyTorch
//! model graph across placements.
//!
//! [`bridge::profile_for`] converts a workload spec into the
//! `fae-sysmodel` cost profile so the *same* model shapes drive both the
//! numeric experiments (Fig 12) and the performance model (Figs 13–15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod attention;
pub mod bridge;
pub mod dlrm;
pub mod interaction;
pub mod source;
pub mod tbsm;
pub mod train;

pub use dlrm::Dlrm;
pub use source::{EmbeddingSource, MasterEmbeddings, TieredViewError};
pub use tbsm::Tbsm;
pub use train::{evaluate, forward_backward, predict, train_step, EvalReport, RecModel};
