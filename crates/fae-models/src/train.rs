//! The model trait and the shared train/eval step.
//!
//! One training step is identical for DLRM and TBSM: forward through the
//! model against an [`EmbeddingSource`], binary cross-entropy on the click
//! label, backward, dense SGD inside the model, sparse SGD routed to the
//! embedding source. The FAE trainer in `fae-core` drives exactly this
//! function for both hot and cold mini-batches — only the source differs.

use fae_data::MiniBatch;
use fae_embed::SparseGrad;
use fae_nn::loss::{bce_loss, bce_loss_backward, binary_accuracy};
use fae_nn::Tensor;

use crate::source::EmbeddingSource;

/// A trainable recommendation model.
pub trait RecModel {
    /// Predicts click probabilities (`batch × 1`), caching activations.
    fn forward(&mut self, batch: &MiniBatch, emb: &dyn EmbeddingSource) -> Tensor;

    /// Backpropagates `grad` (d loss / d predictions), accumulating dense
    /// parameter gradients internally and returning per-table sparse
    /// embedding gradients keyed by *global* row ids.
    fn backward(&mut self, grad: &Tensor) -> Vec<SparseGrad>;

    /// Applies one SGD step to the dense parameters.
    fn sgd_step(&mut self, lr: f32);

    /// Clears dense parameter gradients.
    fn zero_grad(&mut self);

    /// Number of trainable dense scalars.
    fn dense_param_count(&self) -> usize;

    /// Flattens the dense parameters into `out` (replica synchronisation).
    fn write_params(&self, out: &mut Vec<f32>);

    /// Loads dense parameters from `src`, returning the number consumed.
    fn read_params(&mut self, src: &[f32]) -> usize;

    /// Flattens the accumulated dense gradients into `out`, in
    /// [`write_params`](RecModel::write_params) order. The parallel
    /// execution engine reduces these across workers in worker-index
    /// order, which is what makes fixed-worker-count runs bit-identical.
    fn write_grads(&self, out: &mut Vec<f32>);

    /// Overwrites the accumulated dense gradients from `src` (layout of
    /// [`write_grads`](RecModel::write_grads)), returning the number of
    /// scalars consumed. A following [`sgd_step`](RecModel::sgd_step)
    /// applies exactly the loaded gradient.
    fn read_grads(&mut self, src: &[f32]) -> usize;
}

/// Runs one training step; returns the mini-batch BCE loss.
pub fn train_step(
    model: &mut dyn RecModel,
    emb: &mut dyn EmbeddingSource,
    batch: &MiniBatch,
    lr: f32,
) -> f32 {
    assert!(!batch.is_empty(), "cannot train on an empty mini-batch");
    model.zero_grad();
    let pred = model.forward(batch, emb);
    let target = Tensor::from_vec(batch.len(), 1, batch.labels.clone());
    let loss = bce_loss(&pred, &target);
    let grad = bce_loss_backward(&pred, &target);
    let emb_grads = model.backward(&grad);
    model.sgd_step(lr);
    emb.apply_sparse_grads(&emb_grads, lr);
    loss
}

/// The forward + backward half of [`train_step`], without any parameter
/// update: returns the (unweighted) mini-batch BCE loss and the per-table
/// sparse embedding gradients, leaving the dense gradients accumulated
/// inside the model for the caller to extract via
/// [`RecModel::write_grads`].
///
/// `grad_scale` multiplies the loss gradient before backpropagation — the
/// parallel engine passes each worker's sample fraction `n_w / N` so that
/// summing worker gradients reproduces the full-batch mean-loss gradient.
/// A scale of exactly `1.0` skips the multiply, keeping the single-worker
/// path bit-identical to [`train_step`]'s arithmetic.
pub fn forward_backward(
    model: &mut dyn RecModel,
    emb: &dyn EmbeddingSource,
    batch: &MiniBatch,
    grad_scale: f32,
) -> (f32, Vec<SparseGrad>) {
    assert!(!batch.is_empty(), "cannot train on an empty mini-batch");
    model.zero_grad();
    let pred = model.forward(batch, emb);
    let target = Tensor::from_vec(batch.len(), 1, batch.labels.clone());
    let loss = bce_loss(&pred, &target);
    let mut grad = bce_loss_backward(&pred, &target);
    if grad_scale != 1.0 {
        grad = grad.map(|v| v * grad_scale);
    }
    let emb_grads = model.backward(&grad);
    (loss, emb_grads)
}

/// Evaluation metrics over a batch stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalReport {
    /// Mean BCE loss over all samples.
    pub loss: f64,
    /// Fraction of correctly thresholded predictions.
    pub accuracy: f64,
    /// Samples evaluated.
    pub samples: usize,
}

/// Evaluates the model on `batches` without updating any parameters.
pub fn evaluate(
    model: &mut dyn RecModel,
    emb: &dyn EmbeddingSource,
    batches: &[MiniBatch],
) -> EvalReport {
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    let mut n = 0usize;
    for b in batches {
        if b.is_empty() {
            continue;
        }
        let pred = model.forward(b, emb);
        let target = Tensor::from_vec(b.len(), 1, b.labels.clone());
        loss_sum += bce_loss(&pred, &target) as f64 * b.len() as f64;
        acc_sum += binary_accuracy(&pred, &target) * b.len() as f64;
        n += b.len();
    }
    if n == 0 {
        return EvalReport { loss: f64::NAN, accuracy: f64::NAN, samples: 0 };
    }
    EvalReport { loss: loss_sum / n as f64, accuracy: acc_sum / n as f64, samples: n }
}

/// Inference-only forward pass: click probabilities (`batch × 1`) with no
/// gradient accumulation and no parameter update. This is the serving
/// entry point (`fae-serve`): the model's cached activations are
/// overwritten but its parameters and the embedding source are untouched.
pub fn predict(model: &mut dyn RecModel, emb: &dyn EmbeddingSource, batch: &MiniBatch) -> Tensor {
    assert!(!batch.is_empty(), "cannot predict on an empty mini-batch");
    model.forward(batch, emb)
}
