//! Time-Based Sequence Model (Ishkhanov et al., the paper's RMC1
//! workload on Taobao).
//!
//! TBSM augments the DLRM embedding machinery with an attention layer over
//! the user's behaviour sequence. Our faithful-in-structure rendition
//! (documented as a substitution in DESIGN.md):
//!
//! * table 0 — item embeddings, one per behaviour-sequence step (ragged),
//! * table 1 — category embeddings, one per step, mean-pooled,
//! * table 2 — user embedding, one per sample,
//! * query `q = user + mean(categories) + bottomMLP(dense)`,
//! * context = scaled-dot-product attention of `q` over the item sequence,
//! * prediction = `σ(topMLP([context ; q]))`.

use rand::Rng;

use fae_data::{MiniBatch, TableIndices, WorkloadKind, WorkloadSpec};
use fae_embed::SparseGrad;
use fae_nn::{Activation, Layer, Mlp, Tensor};

use crate::attention::{AttentionPool, SeqBatch};
use crate::source::EmbeddingSource;
use crate::train::RecModel;

/// Table roles within a TBSM workload spec.
const ITEMS: usize = 0;
const CATEGORIES: usize = 1;
const USERS: usize = 2;

/// The TBSM model.
pub struct Tbsm {
    bottom: Mlp,
    top: Mlp,
    attention: AttentionPool,
    emb_dim: usize,
    cached: Option<CachedBatch>,
}

struct CachedBatch {
    items: TableIndices,
    categories: TableIndices,
    users: TableIndices,
}

impl Tbsm {
    /// Builds a TBSM matching `spec` (must be a [`WorkloadKind::Tbsm`]
    /// spec with exactly three tables). The top MLP's input width is
    /// derived as `2·embedding_dim` ([context ; query]).
    pub fn from_spec(spec: &WorkloadSpec, rng: &mut impl Rng) -> Self {
        assert_eq!(spec.kind, WorkloadKind::Tbsm, "Tbsm requires a TBSM spec");
        assert_eq!(spec.tables.len(), 3, "TBSM uses item/category/user tables");
        assert_eq!(
            spec.bottom_mlp.last().copied(),
            Some(spec.embedding_dim),
            "bottom MLP must emit embedding_dim features"
        );
        let mut top_sizes = spec.top_mlp.clone();
        top_sizes[0] = 2 * spec.embedding_dim;
        Self {
            bottom: Mlp::new(&spec.bottom_mlp, Activation::Relu, rng),
            top: Mlp::new(&top_sizes, Activation::Sigmoid, rng),
            attention: AttentionPool::new(),
            emb_dim: spec.embedding_dim,
            cached: None,
        }
    }
}

/// Unit offsets `[0, 1, 2, ..., n]` exposing each index as its own row.
fn unit_offsets(n: usize) -> Vec<usize> {
    (0..=n).collect()
}

impl RecModel for Tbsm {
    fn forward(&mut self, batch: &MiniBatch, emb: &dyn EmbeddingSource) -> Tensor {
        assert_eq!(batch.sparse.len(), 3, "TBSM batch must carry 3 tables");
        let n = batch.len();
        let d = self.emb_dim;
        let dense = Tensor::from_vec(n, batch.dense_width, batch.dense.clone());
        let bottom_out = self.bottom.forward(&dense);

        let users = &batch.sparse[USERS];
        let user_emb = emb.lookup(USERS, &users.indices, &users.offsets);

        // Mean-pooled categories: sum-pool then scale per-sample by 1/len.
        let cats = &batch.sparse[CATEGORIES];
        let mut cat_mean = emb.lookup(CATEGORIES, &cats.indices, &cats.offsets);
        for i in 0..n {
            let ln = cats.bag(i).len().max(1) as f32;
            for v in cat_mean.row_mut(i) {
                *v /= ln;
            }
        }

        let query = bottom_out.add(&user_emb).add(&cat_mean);

        // Item behaviour sequence: one embedding row per step.
        let items = &batch.sparse[ITEMS];
        let item_rows = emb.lookup(ITEMS, &items.indices, &unit_offsets(items.indices.len()));
        let seq = SeqBatch { data: item_rows.into_vec(), offsets: items.offsets.clone(), dim: d };
        let context = self.attention.forward(&seq, &query);

        self.cached = Some(CachedBatch {
            items: items.clone(),
            categories: cats.clone(),
            users: users.clone(),
        });
        self.top.forward(&Tensor::hcat(&[&context, &query]))
    }

    fn backward(&mut self, grad: &Tensor) -> Vec<SparseGrad> {
        // fae-lint: allow(no-panic, reason = "forward-before-backward is a call-order contract; fabricating a gradient here would corrupt training silently")
        let cached = self.cached.take().expect("Tbsm::backward called before forward");
        let d = self.emb_dim;
        let dz = self.top.backward(grad);
        let parts = dz.hsplit(&[d, d]);
        let (d_ctx, d_query_direct) = (&parts[0], &parts[1]);
        let (d_seq, d_query_att) = self.attention.backward(d_ctx);
        let d_query = d_query_direct.add(&d_query_att);

        // Query fans out to bottom MLP, user embedding, category mean.
        self.bottom.backward(&d_query);

        let n = d_query.rows();
        let mut user_grads = SparseGrad::new(d);
        let mut cat_grads = SparseGrad::new(d);
        let mut item_grads = SparseGrad::new(d);
        for i in 0..n {
            let gq = d_query.row(i);
            for &u in cached.users.bag(i) {
                user_grads.accumulate(u, gq);
            }
            let cbag = cached.categories.bag(i);
            if !cbag.is_empty() {
                let scaled: Vec<f32> = gq.iter().map(|&g| g / cbag.len() as f32).collect();
                for &c in cbag {
                    cat_grads.accumulate(c, &scaled);
                }
            }
            for (t, &it) in cached.items.bag(i).iter().enumerate() {
                item_grads.accumulate(it, d_seq.vector(i, t));
            }
        }
        vec![item_grads, cat_grads, user_grads]
    }

    fn sgd_step(&mut self, lr: f32) {
        self.bottom.sgd_step(lr);
        self.top.sgd_step(lr);
    }

    fn zero_grad(&mut self) {
        self.bottom.zero_grad();
        self.top.zero_grad();
    }

    fn dense_param_count(&self) -> usize {
        self.bottom.param_count() + self.top.param_count()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        self.bottom.write_params(out);
        self.top.write_params(out);
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let n = self.bottom.read_params(src);
        n + self.top.read_params(&src[n..])
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        self.bottom.write_grads(out);
        self.top.write_grads(out);
    }

    fn read_grads(&mut self, src: &[f32]) -> usize {
        let n = self.bottom.read_grads(src);
        n + self.top.read_grads(&src[n..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MasterEmbeddings;
    use crate::train::{evaluate, train_step};
    use fae_data::{generate, BatchKind, GenOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_tbsm_spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::rmc1_taobao();
        s.tables[ITEMS].rows = 2_000;
        s.tables[CATEGORIES].rows = 200;
        s.tables[USERS].rows = 500;
        s
    }

    fn setup() -> (Tbsm, MasterEmbeddings, fae_data::Dataset) {
        let spec = small_tbsm_spec();
        let mut rng = StdRng::seed_from_u64(11);
        let model = Tbsm::from_spec(&spec, &mut rng);
        let emb = MasterEmbeddings::from_spec(&spec, &mut rng);
        let ds = generate(&spec, &GenOptions::sized(13, 3_000));
        (model, emb, ds)
    }

    #[test]
    fn forward_shape_and_range() {
        let (mut model, emb, ds) = setup();
        let mb = MiniBatch::gather(&ds, &(0..16).collect::<Vec<_>>(), BatchKind::Unclassified);
        let pred = model.forward(&mb, &emb);
        assert_eq!(pred.shape(), (16, 1));
        assert!(pred.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p) && p.is_finite()));
    }

    #[test]
    fn backward_touches_exactly_the_batch_rows() {
        let (mut model, emb, ds) = setup();
        let mb = MiniBatch::gather(&ds, &[0, 1, 2], BatchKind::Unclassified);
        let pred = model.forward(&mb, &emb);
        let grads = model.backward(&Tensor::full(pred.rows(), 1, 0.1));
        for (t, g) in grads.iter().enumerate() {
            let touched: std::collections::BTreeSet<u32> =
                mb.sparse[t].indices.iter().copied().collect();
            assert_eq!(g.nnz_rows(), touched.len(), "table {t}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, mut emb, ds) = setup();
        let batches: Vec<MiniBatch> = (0..ds.len() / 64)
            .map(|i| {
                MiniBatch::gather(
                    &ds,
                    &(i * 64..(i + 1) * 64).collect::<Vec<_>>(),
                    BatchKind::Unclassified,
                )
            })
            .collect();
        let initial = evaluate(&mut model, &emb, &batches[..4]);
        for _ in 0..2 {
            for b in &batches {
                train_step(&mut model, &mut emb, b, 0.05);
            }
        }
        let fin = evaluate(&mut model, &emb, &batches[..4]);
        assert!(
            fin.loss < initial.loss,
            "TBSM loss did not fall: {} -> {}",
            initial.loss,
            fin.loss
        );
        assert!(fin.accuracy > 0.55, "TBSM accuracy only {}", fin.accuracy);
    }

    #[test]
    #[should_panic(expected = "requires a TBSM spec")]
    fn rejects_dlrm_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Tbsm::from_spec(&WorkloadSpec::tiny_test(), &mut rng);
    }
}
