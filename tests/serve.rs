//! End-to-end serving tests: train → checkpoint → serve, plus the
//! record/replay contract `serve-smoke` CI leans on.

use std::fs;
use std::path::PathBuf;

use fae::core::{
    latest_in, pipeline, train_fae_resilient, CalibratorConfig, PreprocessConfig,
    ResilienceOptions, TrainCheckpoint, TrainConfig,
};
use fae::data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae::serve::{
    calibrate_partitions, open_loop_requests, RequestTrace, ServeConfig, ServeEngine, ServeLoad,
};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fae-serve-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn paper_calibrator(spec: &WorkloadSpec) -> CalibratorConfig {
    CalibratorConfig {
        gpu_budget_bytes: spec.embedding_bytes() / 8,
        small_table_bytes: 8 << 10,
        ..Default::default()
    }
}

#[test]
fn trained_checkpoint_serves_with_hot_cache_hit_rate() {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(1, 6_000));
    let (train, test) = ds.clone().split(0.2);
    let art = pipeline::prepare(
        &train,
        paper_calibrator(&spec),
        &PreprocessConfig { minibatch_size: 64, seed: 1 },
    );
    let dir = tmpdir("ckpt");
    train_fae_resilient(
        &spec,
        &art.preprocessed,
        &test,
        &TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() },
        &ResilienceOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every_rounds: 1,
            ..Default::default()
        },
    );
    let ck_path = latest_in(&dir).unwrap().expect("training must leave a checkpoint");
    let ck = TrainCheckpoint::load(&ck_path).unwrap();
    fs::remove_dir_all(&dir).ok();

    let engine = ServeEngine::from_checkpoint(
        spec.clone(),
        &ck,
        art.preprocessed.partitions.clone(),
        ServeConfig::default(),
    );
    let reqs = open_loop_requests(600, 2_000.0, ds.len(), 11);
    let report = engine.serve(&ds, &ServeLoad::Open(reqs));

    assert_eq!(report.completed, 600, "every request must complete");
    assert_eq!(report.rejected, 0);
    assert!(report.batches > 0);
    assert!(report.p50_ms > 0.0);
    assert!(report.p50_ms <= report.p95_ms && report.p95_ms <= report.p99_ms);
    assert!(report.throughput_rps > 0.0);
    // The paper's core claim, at serving time: the calibrated hot tier
    // plus a small dynamic cache absorbs the great majority of lookups.
    assert!(
        report.hit_rate >= 0.75,
        "hot-cache hit rate {:.4} below the 0.75 floor",
        report.hit_rate
    );
    // Trained model scores are probabilities from a sigmoid head.
    assert!(report.mean_score.is_finite());
    assert!(report.mean_score > 0.0 && report.mean_score < 1.0);
}

fn untrained_engine(seed: u64) -> (Dataset, ServeEngine) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(seed, 2_000));
    let parts = calibrate_partitions(&ds, paper_calibrator(&spec));
    (ds, ServeEngine::untrained(spec, parts, ServeConfig::default()))
}

#[test]
fn recorded_trace_replays_bit_identically() {
    let data_seed = 1u64;
    let (ds, engine) = untrained_engine(data_seed);
    let reqs = open_loop_requests(300, 3_000.0, ds.len(), 5);
    let original = engine.serve(&ds, &ServeLoad::Open(reqs));

    let dir = tmpdir("trace");
    let path = dir.join("requests.jsonl");
    let trace = RequestTrace {
        workload: "tiny-test".into(),
        data_seed,
        requests: original.requests.clone(),
    };
    trace.save(&path).unwrap();

    let loaded = RequestTrace::load(&path).unwrap();
    loaded.validate("tiny-test", data_seed, ds.len()).unwrap();
    assert_eq!(loaded.requests, original.requests);

    // Replay through a *fresh* engine: the simulated clock makes the
    // whole serve run a pure function of (engine state, trace).
    let (_, engine2) = untrained_engine(data_seed);
    let replay = engine2.serve(&ds, &ServeLoad::Open(loaded.requests));
    fs::remove_dir_all(&dir).ok();

    assert_eq!(replay.completed, original.completed);
    assert_eq!(replay.batches, original.batches);
    assert_eq!(replay.p50_ms.to_bits(), original.p50_ms.to_bits());
    assert_eq!(replay.p99_ms.to_bits(), original.p99_ms.to_bits());
    assert_eq!(replay.simulated_seconds.to_bits(), original.simulated_seconds.to_bits());
    assert_eq!(replay.hit_rate.to_bits(), original.hit_rate.to_bits());
    assert_eq!(replay.mean_score.to_bits(), original.mean_score.to_bits());
}

#[test]
fn trace_validation_rejects_foreign_datasets() {
    let (ds, engine) = untrained_engine(1);
    let reqs = open_loop_requests(50, 5_000.0, ds.len(), 9);
    let report = engine.serve(&ds, &ServeLoad::Open(reqs));
    let trace =
        RequestTrace { workload: "tiny-test".into(), data_seed: 1, requests: report.requests };
    assert!(trace.validate("tiny-test", 1, ds.len()).is_ok());
    assert!(trace.validate("kaggle", 1, ds.len()).is_err(), "wrong workload must fail");
    assert!(trace.validate("tiny-test", 2, ds.len()).is_err(), "wrong data seed must fail");
    assert!(trace.validate("tiny-test", 1, 1).is_err(), "out-of-range inputs must fail");
}
