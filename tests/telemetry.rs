//! Integration tests for the telemetry layer: the journal-sums-to-
//! simulated-seconds invariant (including across resume), the journal →
//! `fae report` round trip, and byte-level determinism of the Chrome
//! trace export.

use std::fs;
use std::path::PathBuf;

use fae::core::input_processor::{PreprocessConfig, Preprocessed};
use fae::core::{
    pipeline, train_fae_resilient, CalibratorConfig, FaultPlan, ResilienceOptions, Telemetry,
    TrainConfig,
};
use fae::data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae::telemetry::{chrome_trace, read_journal, summarize, JournalEvent};

/// Shrunken budget so the tiny workload actually splits hot/cold.
fn forced_partial_calibrator() -> CalibratorConfig {
    CalibratorConfig {
        gpu_budget_bytes: 40 << 10,
        small_table_bytes: 2 << 10,
        ..Default::default()
    }
}

fn setup() -> (WorkloadSpec, Preprocessed, Dataset, TrainConfig) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(977, 10_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 5 },
    );
    let cfg = TrainConfig { epochs: 2, minibatch_size: 64, num_gpus: 2, ..Default::default() };
    (spec, artifacts.preprocessed, test, cfg)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fae-telemetry-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Sum of every journalled per-phase second (steps, syncs, charges).
fn journalled_seconds(events: &[JournalEvent]) -> f64 {
    events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::Step { phases, .. }
            | JournalEvent::Sync { phases, .. }
            | JournalEvent::Charge { phases, .. } => Some(phases.total()),
            _ => None,
        })
        .sum()
}

#[test]
fn journal_phase_seconds_sum_to_simulated_seconds() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("sums");
    let journal = dir.join("run.jsonl");
    let telem = Telemetry::builder()
        .journal_path(&journal)
        .retain_events(true)
        .try_build()
        .expect("telemetry");
    let opts = ResilienceOptions {
        plan: FaultPlan::parse_seeded("sync-failure@40,device-loss@90", 11).unwrap(),
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every_rounds: 1,
        telemetry: telem.clone(),
        ..Default::default()
    };
    let report = train_fae_resilient(&spec, &pre, &test, &cfg, &opts);

    // In-memory stream and on-disk journal agree.
    let retained = telem.events();
    let from_disk = read_journal(&journal).expect("journal parses");
    assert_eq!(retained, from_disk);

    // The headline invariant: journalled per-phase seconds account for
    // every simulated second the run reports.
    let sum = journalled_seconds(&retained);
    assert!(
        (sum - report.simulated_seconds).abs() < 1e-6,
        "journalled {sum} vs reported {}",
        report.simulated_seconds
    );

    // The eval trail carries the scheduling context: step counters are
    // monotone and end at the run's totals, simulated time is monotone.
    let evals: Vec<_> = report.history.iter().collect();
    assert!(!evals.is_empty());
    for w in evals.windows(2) {
        assert!(w[1].hot_steps >= w[0].hot_steps);
        assert!(w[1].cold_steps >= w[0].cold_steps);
        assert!(w[1].sim_seconds >= w[0].sim_seconds);
    }
    let last = evals.last().unwrap();
    assert_eq!(last.hot_steps, report.hot_steps);
    assert_eq!(last.cold_steps, report.cold_steps);

    // Metrics agree with the report's own accounting.
    let m = telem.metrics();
    assert_eq!(m.counter("train.steps_hot"), report.hot_steps as u64);
    assert_eq!(m.counter("train.steps_cold"), report.cold_steps as u64);
    assert_eq!(m.counter("faults.injected.sync-failure"), 1);
    assert_eq!(m.counter("faults.injected.device-loss"), 1);
}

#[test]
fn journal_sums_hold_across_resume() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("resume");

    // First leg: halt mid-run with checkpointing on. The halt point is
    // past the first schedule round so at least one checkpoint exists.
    let first = ResilienceOptions {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every_rounds: 1,
        halt_after_steps: Some(150),
        ..Default::default()
    };
    let r1 = train_fae_resilient(&spec, &pre, &test, &cfg, &first);
    assert!(r1.interrupted);
    assert!(fae::core::latest_in(&dir).unwrap().is_some(), "no checkpoint before resume");

    // Second leg: resume with a journal attached. The resumed run must
    // journal the checkpoint's prior timeline as a charge so its event
    // stream still accounts for the *total* simulated seconds.
    let telem = Telemetry::builder().retain_events(true).try_build().expect("telemetry");
    let second = ResilienceOptions {
        checkpoint_dir: Some(dir),
        checkpoint_every_rounds: 1,
        resume: true,
        telemetry: telem.clone(),
        ..Default::default()
    };
    let r2 = train_fae_resilient(&spec, &pre, &test, &cfg, &second);
    assert!(!r2.interrupted);
    let events = telem.events();
    assert!(events.iter().any(|e| matches!(
        e,
        JournalEvent::Recovery { action, .. } if action == "resumed-from-checkpoint"
    )));
    let sum = journalled_seconds(&events);
    assert!(
        (sum - r2.simulated_seconds).abs() < 1e-6,
        "journalled {sum} vs reported {} after resume",
        r2.simulated_seconds
    );
}

#[test]
fn report_summary_matches_run() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("report");
    let journal = dir.join("run.jsonl");
    let telem = Telemetry::builder().journal_path(&journal).try_build().expect("telemetry");
    let opts = ResilienceOptions { telemetry: telem, ..Default::default() };
    let report = train_fae_resilient(&spec, &pre, &test, &cfg, &opts);

    let events = read_journal(&journal).expect("journal parses");
    let summary = summarize(&events);
    assert_eq!(
        summary.hot_steps + summary.cold_steps,
        (report.hot_steps + report.cold_steps) as u64
    );
    assert!((summary.journalled_seconds() - report.simulated_seconds).abs() < 1e-6);
    assert!((summary.reported_simulated_seconds.unwrap() - report.simulated_seconds).abs() < 1e-12);

    let rendered = fae::telemetry::render(&summary);
    assert!(rendered.contains("framework"), "rendered:\n{rendered}");
    assert!(rendered.contains("all-reduce"), "rendered:\n{rendered}");
    assert!(rendered.contains(&format!("{} hot", report.hot_steps)), "rendered:\n{rendered}");
}

#[test]
fn chrome_trace_is_deterministic_for_same_seed() {
    let (spec, pre, test, cfg) = setup();
    let run = || {
        let telem = Telemetry::builder().retain_events(true).try_build().expect("telemetry");
        let opts = ResilienceOptions {
            plan: FaultPlan::parse_seeded("sync-failure@40", 7).unwrap(),
            telemetry: telem.clone(),
            ..Default::default()
        };
        train_fae_resilient(&spec, &pre, &test, &cfg, &opts);
        chrome_trace(&telem.events()).expect("render")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed runs must export byte-identical traces");

    // The trace is valid JSON of the Trace-Event shape Perfetto loads.
    let v: serde_json::Value = serde_json::from_str(&a).expect("trace parses");
    let events = v.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    assert!(events.len() > 10);
    assert!(events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));
}

/// Satellite of the fae-lint PR: the determinism contract the linter
/// enforces (no wall clock, no ambient RNG, no hash-order iteration in
/// the five deterministic crates) is observable end to end — two
/// same-seed runs must write byte-identical journal *files*, not just
/// equal in-memory event streams.
#[test]
fn same_seed_runs_write_byte_identical_journals() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("byte-identity");
    let run = |name: &str| -> Vec<u8> {
        let path = dir.join(name);
        let telem = Telemetry::builder().journal_path(&path).try_build().expect("telemetry");
        let opts = ResilienceOptions {
            plan: FaultPlan::parse_seeded("sync-failure@40,device-loss@90", 11).unwrap(),
            telemetry: telem,
            ..Default::default()
        };
        train_fae_resilient(&spec, &pre, &test, &cfg, &opts);
        fs::read(&path).expect("journal file")
    };
    let a = run("a.jsonl");
    let b = run("b.jsonl");
    assert!(!a.is_empty(), "journal must not be empty");
    assert_eq!(a, b, "same-seed runs must write byte-identical journals");
}
