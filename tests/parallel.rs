//! Integration tests for the parallel execution engine's determinism
//! contract: for a *fixed* worker count, training is bit-identical run
//! to run — same `EvalPoint` stream, same checkpoint digest — including
//! across a checkpoint/resume boundary.

use std::fs;
use std::path::PathBuf;

use fae::core::input_processor::{PreprocessConfig, Preprocessed};
use fae::core::{
    latest_in, pipeline, train_fae, train_fae_resilient, CalibratorConfig, EvalPoint,
    RecoveryAction, ResilienceOptions, TrainCheckpoint, TrainConfig,
};
use fae::data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae::embed::{EmbeddingTable, ShardedEmbeddingTable, SparseGrad};
use fae::nn::Tensor;

/// Shrunken calibrator budget so the tiny workload has both hot and
/// cold batches (same trick as the end-to-end suite).
fn forced_partial_calibrator() -> CalibratorConfig {
    CalibratorConfig {
        gpu_budget_bytes: 40 << 10,
        small_table_bytes: 2 << 10,
        ..Default::default()
    }
}

fn setup(workers: usize) -> (WorkloadSpec, Preprocessed, Dataset, TrainConfig) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(131, 8_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 3 },
    );
    let cfg = TrainConfig {
        epochs: 2,
        minibatch_size: 64,
        initial_rate: 25,
        workers,
        ..Default::default()
    };
    (spec, artifacts.preprocessed, test, cfg)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fae-par-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn checkpointing(dir: PathBuf) -> ResilienceOptions {
    ResilienceOptions {
        checkpoint_dir: Some(dir),
        checkpoint_every_rounds: 1,
        ..Default::default()
    }
}

/// Every float in the eval stream compared by bits, not by `==`.
fn assert_history_bit_identical(a: &[EvalPoint], b: &[EvalPoint], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: eval-point counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.iteration, y.iteration, "{ctx}: eval {i} iteration");
        assert_eq!(x.test_loss.to_bits(), y.test_loss.to_bits(), "{ctx}: eval {i} loss bits");
        assert_eq!(
            x.test_accuracy.to_bits(),
            y.test_accuracy.to_bits(),
            "{ctx}: eval {i} accuracy bits"
        );
        assert_eq!(x.rate, y.rate, "{ctx}: eval {i} rate");
        assert_eq!(x.hot_steps, y.hot_steps, "{ctx}: eval {i} hot steps");
        assert_eq!(x.cold_steps, y.cold_steps, "{ctx}: eval {i} cold steps");
        assert_eq!(x.sim_seconds.to_bits(), y.sim_seconds.to_bits(), "{ctx}: eval {i} sim bits");
    }
}

#[test]
fn fixed_worker_count_gives_bit_identical_eval_stream_and_checkpoint_digest() {
    for workers in [1usize, 2, 4] {
        let (spec, pre, test, cfg) = setup(workers);
        let dir_a = tmpdir(&format!("digest-a-w{workers}"));
        let dir_b = tmpdir(&format!("digest-b-w{workers}"));

        let a = train_fae_resilient(&spec, &pre, &test, &cfg, &checkpointing(dir_a.clone()));
        let b = train_fae_resilient(&spec, &pre, &test, &cfg, &checkpointing(dir_b.clone()));

        assert_history_bit_identical(&a.history, &b.history, &format!("W={workers}"));
        assert_eq!(a.final_test.loss.to_bits(), b.final_test.loss.to_bits(), "W={workers}");
        assert_eq!(a.simulated_seconds.to_bits(), b.simulated_seconds.to_bits(), "W={workers}");

        // The full training state fingerprints identically too.
        let ck_a = TrainCheckpoint::load(&latest_in(&dir_a).unwrap().expect("ckpt a")).unwrap();
        let ck_b = TrainCheckpoint::load(&latest_in(&dir_b).unwrap().expect("ckpt b")).unwrap();
        assert_eq!(ck_a.steps, ck_b.steps, "W={workers}: checkpoint steps");
        assert_eq!(
            ck_a.digest(),
            ck_b.digest(),
            "W={workers}: checkpoint digests must match bit for bit"
        );
        fs::remove_dir_all(&dir_a).ok();
        fs::remove_dir_all(&dir_b).ok();
    }
}

#[test]
fn multi_worker_resume_is_bit_identical_to_uninterrupted_run() {
    for workers in [2usize, 4] {
        let (spec, pre, test, cfg) = setup(workers);
        let dir_ref = tmpdir(&format!("resume-ref-w{workers}"));
        let dir = tmpdir(&format!("resume-w{workers}"));

        // Reference: checkpointed but never interrupted, so its final
        // checkpoint digest can be compared against the resumed run's.
        let reference =
            train_fae_resilient(&spec, &pre, &test, &cfg, &checkpointing(dir_ref.clone()));
        let total_steps = reference.hot_steps + reference.cold_steps;

        let halted = train_fae_resilient(
            &spec,
            &pre,
            &test,
            &cfg,
            &ResilienceOptions {
                halt_after_steps: Some(total_steps / 3),
                ..checkpointing(dir.clone())
            },
        );
        assert!(halted.interrupted, "W={workers}: halted run must report interruption");

        let resumed = train_fae_resilient(
            &spec,
            &pre,
            &test,
            &cfg,
            &ResilienceOptions { resume: true, ..checkpointing(dir.clone()) },
        );
        assert!(
            resumed
                .recoveries
                .iter()
                .any(|r| matches!(r, RecoveryAction::ResumedFromCheckpoint { .. })),
            "W={workers}: resume must restore a checkpoint, not start fresh"
        );

        assert_history_bit_identical(
            &resumed.history,
            &reference.history,
            &format!("W={workers} resume"),
        );
        assert_eq!(
            resumed.final_test.loss.to_bits(),
            reference.final_test.loss.to_bits(),
            "W={workers}: resumed final loss must be bit-identical"
        );
        assert_eq!(resumed.simulated_seconds.to_bits(), reference.simulated_seconds.to_bits());

        let ck_ref = TrainCheckpoint::load(&latest_in(&dir_ref).unwrap().unwrap()).unwrap();
        let ck_res = TrainCheckpoint::load(&latest_in(&dir).unwrap().unwrap()).unwrap();
        assert_eq!(ck_ref.steps, ck_res.steps, "W={workers}: final checkpoint steps");
        assert_eq!(
            ck_ref.digest(),
            ck_res.digest(),
            "W={workers}: resumed run's final checkpoint must fingerprint identically"
        );
        fs::remove_dir_all(&dir_ref).ok();
        fs::remove_dir_all(&dir).ok();
    }
}

/// Contention stress for the sharded hot tables, deliberately
/// oversubscribed (several writer threads per host core, far more than
/// the table's shard count). Writer `w` owns the disjoint row set
/// `{r : r ≡ w (mod writers)}` and hammers it with sparse SGD steps
/// while reader threads run `lookup_bag` the whole time. Because every
/// row is touched by exactly one writer, the end state must be
/// bit-identical to applying the same gradients serially — under any
/// interleaving the per-shard write locks allow.
#[test]
fn oversubscribed_writers_on_disjoint_rows_match_serial_application() {
    const ROWS: usize = 1024;
    const DIM: usize = 16;
    const STEPS: usize = 50;
    const LR: f32 = 0.1;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let writers = (cores * 4).max(16);

    let weights: Vec<f32> = (0..ROWS * DIM).map(|i| ((i % 251) as f32 - 125.0) / 251.0).collect();
    let base = EmbeddingTable::from_weights(Tensor::from_vec(ROWS, DIM, weights));
    let sharded = ShardedEmbeddingTable::from_table(&base, 8);

    // Deterministic per-writer gradient stream, reused for the serial
    // reference below.
    let writer_grads = |w: usize| -> Vec<SparseGrad> {
        (0..STEPS)
            .map(|s| {
                let mut g = SparseGrad::new(DIM);
                for r in ((w..ROWS).step_by(writers)).skip(s % 3).step_by(2) {
                    let vals: Vec<f32> =
                        (0..DIM).map(|d| ((w + s + d + r) % 17) as f32 / 17.0 - 0.5).collect();
                    g.accumulate(r as u32, &vals);
                }
                g
            })
            .collect()
    };

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Readers: concurrent bag lookups across all rows must stay
        // deadlock-free and return finite values throughout the storm.
        for _ in 0..4 {
            let sharded = &sharded;
            let stop = &stop;
            scope.spawn(move || {
                let indices: Vec<u32> = (0..ROWS as u32).step_by(7).collect();
                let offsets: Vec<usize> = (0..=indices.len()).collect();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let out = sharded.lookup_bag(&indices, &offsets);
                    assert!(out.as_slice().iter().all(|v| v.is_finite()));
                }
            });
        }
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let sharded = &sharded;
                scope.spawn(move || {
                    for g in writer_grads(w) {
                        sharded.sgd_step_sparse_parallel(&g, LR);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread panicked");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // Serial reference: same gradients, one thread, any order — row
    // disjointness makes the order irrelevant.
    let serial = ShardedEmbeddingTable::from_table(&base, 8);
    for w in 0..writers {
        for g in writer_grads(w) {
            serial.sgd_step_sparse(&g, LR);
        }
    }
    let got = sharded.to_table();
    let want = serial.to_table();
    for r in 0..ROWS as u32 {
        let (g, w) = (got.row(r), want.row(r));
        for (d, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {r} dim {d}: concurrent {a} != serial {b}");
        }
    }
}

#[test]
fn worker_counts_agree_on_training_quality() {
    // Different worker counts legally differ in float summation order,
    // so bits may differ — but the learned model must be equally good.
    let (spec, pre, test, cfg1) = setup(1);
    let r1 = train_fae(&spec, &pre, &test, &cfg1);
    let cfg4 = TrainConfig { workers: 4, ..cfg1 };
    let r4 = train_fae(&spec, &pre, &test, &cfg4);
    assert_eq!(r1.hot_steps + r1.cold_steps, r4.hot_steps + r4.cold_steps);
    assert!(
        (r1.final_test.accuracy - r4.final_test.accuracy).abs() < 0.02,
        "W=4 accuracy {} strayed from W=1 accuracy {}",
        r4.final_test.accuracy,
        r1.final_test.accuracy
    );
    // The simulated cost model is independent of the real thread count.
    assert_eq!(r1.simulated_seconds.to_bits(), r4.simulated_seconds.to_bits());
}
