//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;

use fae::core::input_processor::{classify_inputs, preprocess_inputs, PreprocessConfig};
use fae::core::scheduler::{Rate, ShuffleScheduler};
use fae::core::RandEmBox;
use fae::data::dataset::TableIndices;
use fae::data::format::FaeFile;
use fae::data::{BatchKind, MiniBatch, WorkloadSpec};
use fae::embed::{
    AccessCounter, EmbeddingTable, HotColdPartition, ShardedEmbeddingTable, SparseGrad,
};
use fae::nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------- fae-nn ----------

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in prop::collection::vec(-10.0f32..10.0, 6),
        b in prop::collection::vec(-10.0f32..10.0, 6),
        c in prop::collection::vec(-10.0f32..10.0, 6),
    ) {
        // (A + B)·C == A·C + B·C within fp tolerance.
        let a = Tensor::from_vec(2, 3, a);
        let b = Tensor::from_vec(2, 3, b);
        let c = Tensor::from_vec(3, 2, c);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involutive(v in prop::collection::vec(-100.0f32..100.0, 12)) {
        let t = Tensor::from_vec(3, 4, v);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn hcat_hsplit_roundtrip(
        a in prop::collection::vec(-5.0f32..5.0, 8),
        b in prop::collection::vec(-5.0f32..5.0, 4),
    ) {
        let a = Tensor::from_vec(2, 4, a);
        let b = Tensor::from_vec(2, 2, b);
        let cat = Tensor::hcat(&[&a, &b]);
        let parts = cat.hsplit(&[4, 2]);
        prop_assert_eq!(&parts[0], &a);
        prop_assert_eq!(&parts[1], &b);
    }
}

// ---------- fae-embed ----------

proptest! {
    #[test]
    fn partition_is_exhaustive_and_exclusive(
        counts in prop::collection::vec(0u64..50, 1..200),
        cutoff in 1u64..50,
    ) {
        let mut counter = AccessCounter::new(counts.len());
        for (row, &k) in counts.iter().enumerate() {
            for _ in 0..k { counter.record(row as u32); }
        }
        let p = HotColdPartition::from_counts(&counter, cutoff);
        // hot ∪ cold == all rows, hot ∩ cold == ∅, and classification
        // agrees with the raw counts.
        let mut hot_seen = 0;
        for row in 0..counts.len() as u32 {
            let is_hot = p.is_hot(row);
            prop_assert_eq!(is_hot, counts[row as usize] >= cutoff);
            if is_hot { hot_seen += 1; }
        }
        prop_assert_eq!(hot_seen, p.hot_count());
        // Remap is a bijection hot-local <-> global.
        for local in 0..p.hot_count() as u32 {
            prop_assert_eq!(p.hot_local(p.global_of(local)), Some(local));
        }
    }

    #[test]
    fn sparse_grad_accumulation_is_order_independent(
        updates in prop::collection::vec((0u32..20, -5.0f32..5.0), 1..60),
    ) {
        let mut fwd = SparseGrad::new(1);
        for &(i, v) in &updates { fwd.accumulate(i, &[v]); }
        let mut rev = SparseGrad::new(1);
        for &(i, v) in updates.iter().rev() { rev.accumulate(i, &[v]); }
        prop_assert_eq!(fwd.nnz_rows(), rev.nnz_rows());
        for (a, b) in fwd.iter().zip(rev.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert!((a.1[0] - b.1[0]).abs() < 1e-3);
        }
    }

    #[test]
    fn sharded_table_matches_serial_for_any_shard_count(
        rows in 1usize..40,
        num_shards in 1usize..12,
        bags in prop::collection::vec(prop::collection::vec(0u32..40, 0..5), 1..6),
        updates in prop::collection::vec((0u32..40, -2.0f32..2.0), 0..30),
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut serial = EmbeddingTable::new(rows, 4, &mut rng);
        let sharded = ShardedEmbeddingTable::from_table(&serial, num_shards);

        // Lookup equivalence on arbitrary bags (indices clamped to rows).
        let mut indices = Vec::new();
        let mut offsets = vec![0usize];
        for bag in &bags {
            indices.extend(bag.iter().map(|&i| i % rows as u32));
            offsets.push(indices.len());
        }
        prop_assert_eq!(
            sharded.lookup_bag(&indices, &offsets).as_slice(),
            serial.lookup_bag(&indices, &offsets).as_slice()
        );

        // SGD equivalence: the same sparse gradient applied both ways
        // leaves every row bit-identical (disjoint shards, exact).
        let mut grad = SparseGrad::new(4);
        for &(row, v) in &updates {
            grad.accumulate(row % rows as u32, &[v; 4]);
        }
        serial.sgd_step_sparse(&grad, 0.1);
        sharded.sgd_step_sparse(&grad, 0.1);
        for r in 0..rows as u32 {
            prop_assert_eq!(sharded.row(r).as_slice(), serial.row(r));
        }
    }

    #[test]
    fn randem_exact_on_small_tables_any_pattern(
        counts in prop::collection::vec(0u64..10, 10..500),
        cutoff in 1u64..10,
    ) {
        let mut counter = AccessCounter::new(counts.len());
        for (row, &k) in counts.iter().enumerate() {
            for _ in 0..k { counter.record(row as u32); }
        }
        let mut rng = StdRng::seed_from_u64(1);
        let est = RandEmBox::default().estimate(&counter, cutoff, &mut rng);
        // Tables smaller than one sampling pass are scanned exactly.
        prop_assert_eq!(est.hot_rows as usize, counter.rows_at_or_above(cutoff));
    }
}

// ---------- fae-data ----------

fn arb_minibatch(tables: usize, dense_w: usize) -> impl Strategy<Value = MiniBatch> {
    (1usize..6).prop_flat_map(move |batch| {
        let dense = prop::collection::vec(-10.0f32..10.0, batch * dense_w);
        let labels = prop::collection::vec(0u8..2, batch)
            .prop_map(|v| v.into_iter().map(f32::from).collect::<Vec<f32>>());
        let sparse = prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..1000, 0..4), batch),
            tables..=tables,
        );
        (dense, labels, sparse).prop_map(move |(dense, labels, sparse)| {
            let sparse = sparse
                .into_iter()
                .map(|bags| {
                    let mut csr = TableIndices::new();
                    for bag in bags {
                        csr.push_bag(&bag);
                    }
                    csr
                })
                .collect();
            MiniBatch { kind: BatchKind::Hot, dense, dense_width: dense_w, sparse, labels }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn fae_format_roundtrips_arbitrary_batches(
        batches in prop::collection::vec(arb_minibatch(3, 4), 0..5),
    ) {
        let f = FaeFile::new("prop", batches);
        let decoded = FaeFile::decode(&f.encode()).expect("roundtrip");
        prop_assert_eq!(decoded.batches.len(), f.batches.len());
        for (a, b) in f.batches.iter().zip(&decoded.batches) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(&a.dense, &b.dense);
            prop_assert_eq!(&a.labels, &b.labels);
            prop_assert_eq!(&a.sparse, &b.sparse);
        }
    }

    #[test]
    fn corrupted_fae_bytes_never_panic(
        flips in prop::collection::vec((0usize..2000, 0u8..=255), 1..8),
        cut in 0usize..2000,
        truncate in 0u8..2,
    ) {
        let spec = WorkloadSpec::tiny_test();
        let ds = fae::data::generate(&spec, &fae::data::GenOptions::sized(5, 32));
        let mb = MiniBatch::gather(&ds, &(0..8).collect::<Vec<_>>(), BatchKind::Cold);
        let mut bytes = FaeFile::new("x", vec![mb]).encode().to_vec();
        for &(flip, value) in &flips {
            let at = flip % bytes.len();
            bytes[at] = value;
        }
        if truncate == 1 {
            bytes.truncate(cut % (bytes.len() + 1));
        }
        // Must return Ok or Err — never panic (the container carries no
        // payload checksum, so a body flip may still decode Ok).
        let _ = FaeFile::decode(&bytes);
    }

    #[test]
    fn truncated_fae_bytes_always_error(cut_back in 1usize..100) {
        let spec = WorkloadSpec::tiny_test();
        let ds = fae::data::generate(&spec, &fae::data::GenOptions::sized(5, 32));
        let mb = MiniBatch::gather(&ds, &(0..8).collect::<Vec<_>>(), BatchKind::Cold);
        let bytes = FaeFile::new("x", vec![mb]).encode().to_vec();
        let cut = bytes.len().saturating_sub(cut_back);
        prop_assert!(FaeFile::decode(&bytes[..cut]).is_err());
    }
}

// ---------- fae-core checkpoint container ----------

fn sample_checkpoint() -> fae::core::TrainCheckpoint {
    use fae::core::{SchedulerState, TableSnapshot, TrainCheckpoint};
    TrainCheckpoint {
        config_seed: 7,
        epoch: 0,
        hot_cursor: 3,
        cold_cursor: 9,
        steps: 12,
        hot_steps: 3,
        cold_steps: 9,
        transitions: 2,
        gpus_active: 2,
        cold_only: false,
        scheduler: SchedulerState {
            rate: 50,
            prev_loss: Some(0.6),
            improving_streak: 1,
            u: 4,
            history: vec![(0.6, 50)],
        },
        timeline: fae::sysmodel::Timeline::new(),
        history: vec![],
        faults: vec![],
        recoveries: vec![],
        dense_params: vec![0.5, -0.25, 1.5],
        tables: vec![TableSnapshot { rows: 2, dim: 2, weights: vec![1.0, 2.0, 3.0, 4.0] }],
    }
}

proptest! {
    #[test]
    fn corrupted_checkpoint_always_errors_never_panics(
        flips in prop::collection::vec((0usize..4096, 1u8..=255), 1..6),
        cut in 0usize..4096,
        truncate in 0u8..2,
    ) {
        use fae::core::TrainCheckpoint;
        let good = sample_checkpoint().encode();
        let mut bytes = good.clone();
        for &(flip, xor) in &flips {
            let at = flip % bytes.len();
            bytes[at] ^= xor; // xor with 1..=255 guarantees a real change
        }
        if truncate == 1 {
            bytes.truncate(cut % bytes.len()); // strictly shorter
        }
        // The CRC trailer guards every byte: any modification must be
        // *detected* (Err), and detection must never panic. (Two xor
        // flips at the same offset can cancel out — skip that case.)
        if bytes != good {
            prop_assert!(TrainCheckpoint::decode(&bytes).is_err());
        }
        // The pristine bytes still decode.
        prop_assert!(TrainCheckpoint::decode(&good).is_ok());
    }
}

// ---------- fae-core ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn scheduler_rate_always_within_bounds(losses in prop::collection::vec(0.01f64..10.0, 1..80)) {
        let mut s = ShuffleScheduler::paper_default();
        for &l in &losses {
            let r = s.observe_test_loss(l);
            prop_assert!((1..=100).contains(&r.pct()));
        }
    }

    #[test]
    fn block_len_always_progresses(total in 0usize..10_000, pct in 0u32..200) {
        let r = Rate::new(pct);
        let b = r.block_len(total);
        prop_assert!(b >= 1);
        prop_assert!(b <= total.max(1));
    }
}

#[test]
fn preprocess_partitions_inputs_exactly_once_under_any_batch_size() {
    let spec = WorkloadSpec::tiny_test();
    let ds = fae::data::generate(&spec, &fae::data::GenOptions::sized(11, 3_000));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = fae::core::calibrator::log_accesses(&ds, &all);
    let parts: Vec<HotColdPartition> =
        counters.iter().map(|c| HotColdPartition::from_counts(c, 4)).collect();
    let reference = classify_inputs(&ds, &parts);
    for mb_size in [1usize, 7, 64, 5_000] {
        let pre = preprocess_inputs(
            &ds,
            parts.clone(),
            &PreprocessConfig { minibatch_size: mb_size, seed: 9 },
        );
        assert_eq!(pre.total_samples(), ds.len(), "batch size {mb_size}");
        let hot_samples: usize = pre.hot_batches.iter().map(|b| b.len()).sum();
        assert_eq!(hot_samples, reference.iter().filter(|&&h| h).count());
    }
}

#[test]
fn timeline_never_goes_negative() {
    // Deterministic sanity on the cost model over a parameter sweep.
    use fae::core::scheduler::Rate as R;
    use fae::core::simsched::{simulate_baseline, simulate_fae, SimConfig};
    let profile = fae::models::bridge::profile_for(&WorkloadSpec::rmc2_kaggle_paper(), 256e6);
    for gpus in [1usize, 2, 4, 8] {
        for batch in [64usize, 1024, 32768] {
            for hot in [0.0f64, 0.5, 1.0] {
                let cfg = SimConfig {
                    total_inputs: 100_000,
                    batch,
                    hot_fraction: hot,
                    rate: R::new(50),
                    epochs: 1,
                    num_gpus: gpus,
                };
                let f = simulate_fae(&profile, &cfg);
                let b = simulate_baseline(&profile, &cfg);
                assert!(f.total() > 0.0 && f.total().is_finite());
                assert!(b.total() > 0.0 && b.total().is_finite());
                for p in fae::sysmodel::Phase::ALL {
                    assert!(f.get(p) >= 0.0 && b.get(p) >= 0.0);
                }
            }
        }
    }
}

// ---------- fae-core oracle lookahead ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn oracle_lookahead_decisions_are_prefix_stable(
        stream in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..64, 0..6), 3..=3),
            1..24,
        ),
        window in 1usize..6,
        cut in 0usize..64,
    ) {
        use fae::core::{plan_decisions, AccessSet};
        let sets: Vec<AccessSet> = stream
            .into_iter()
            .map(|tables| AccessSet {
                per_table: tables
                    .into_iter()
                    .map(|mut rows| {
                        rows.sort_unstable();
                        rows.dedup();
                        rows
                    })
                    .collect(),
            })
            .collect();
        let full = plan_decisions(&sets, window);
        prop_assert_eq!(full.len(), sets.len());
        let m = 1 + cut % sets.len(); // arbitrary prefix length 1..=n
        let prefix = plan_decisions(&sets[..m], window);
        // Decision i is a function of sets[0..i+window] alone, so every
        // decision whose window fits inside the prefix must be identical
        // to the full-stream decision: extending the known batch stream
        // never rewrites prefetch choices already emitted.
        let stable = (m + 1).saturating_sub(window);
        for i in 0..stable {
            prop_assert_eq!(&prefix[i], &full[i], "decision {} window {} prefix {}", i, window, m);
        }
    }
}

// ---------- fae-sysmodel ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn step_cost_is_monotone_in_batch_size(
        batch_small in 64usize..4096,
        growth in 2usize..8,
        gpus in 1usize..5,
    ) {
        use fae::sysmodel::{step_cost, ExecMode, SystemConfig};
        let profile = fae::models::bridge::profile_for(&WorkloadSpec::rmc2_kaggle_paper(), 256e6);
        let sys = SystemConfig::paper_server(gpus);
        for mode in [ExecMode::BaselineHybrid, ExecMode::FaeHotGpu] {
            let small = step_cost(&profile, &sys, mode, batch_small).total();
            let large = step_cost(&profile, &sys, mode, batch_small * growth).total();
            prop_assert!(large >= small, "{mode:?}: {large} < {small}");
        }
    }

    #[test]
    fn sync_cost_is_monotone_in_hot_bytes(
        a in 1e6f64..1e8,
        factor in 1.0f64..50.0,
        gpus in 1usize..5,
    ) {
        use fae::sysmodel::{sync_cost, SystemConfig};
        let sys = SystemConfig::paper_server(gpus);
        prop_assert!(sync_cost(&sys, a * factor).total() >= sync_cost(&sys, a).total());
    }

    #[test]
    fn allreduce_time_nonnegative_and_monotone_in_bytes(
        bytes in 0.0f64..1e9,
        n in 1usize..16,
    ) {
        use fae::sysmodel::{ring_allreduce_time, LinkSpec};
        let link = LinkSpec::nvlink2();
        let t = ring_allreduce_time(&link, n, bytes);
        prop_assert!(t >= 0.0);
        prop_assert!(ring_allreduce_time(&link, n, bytes * 2.0) >= t);
    }

    #[test]
    fn bf16_roundtrip_error_bounded_for_any_finite_input(v in -1e30f32..1e30) {
        use fae::embed::half::{bf16_to_f32, f32_to_bf16};
        let q = bf16_to_f32(f32_to_bf16(v));
        if v.abs() > f32::MIN_POSITIVE * 256.0 {
            prop_assert!(((q - v) / v).abs() <= 1.0 / 256.0, "{v} -> {q}");
        }
    }

    #[test]
    fn gini_is_within_unit_interval(counts in prop::collection::vec(0u64..1000, 1..300)) {
        let s = fae::data::stats::table_skew(&counts);
        prop_assert!((0.0..=1.0).contains(&s.gini), "gini {}", s.gini);
        prop_assert!(s.top1pct_share <= s.top10pct_share + 1e-12);
        prop_assert!(s.top10pct_share <= 1.0 + 1e-12);
    }
}
