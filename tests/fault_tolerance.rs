//! Integration tests for the resilience layer: checkpoint/resume
//! bit-identity, graceful degradation under injected faults, and
//! retry-with-backoff cost accounting.

use std::fs;
use std::path::PathBuf;

use fae::core::input_processor::{PreprocessConfig, Preprocessed};
use fae::core::{
    latest_in, pipeline, train_fae, train_fae_resilient, CalibratorConfig, FaultPlan,
    RecoveryAction, ResilienceOptions, TrainCheckpoint, TrainConfig,
};
use fae::data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae::sysmodel::Phase;

/// Tiny-test tables are all under 1 MB; shrink the budget so the
/// calibrator actually produces a hot/cold split (same trick as the
/// end-to-end suite).
fn forced_partial_calibrator() -> CalibratorConfig {
    CalibratorConfig {
        gpu_budget_bytes: 40 << 10,
        small_table_bytes: 2 << 10,
        ..Default::default()
    }
}

/// A small workload with both hot and cold batches and a 2-epoch run —
/// enough rounds for checkpoints and faults to land mid-stream.
fn setup() -> (WorkloadSpec, Preprocessed, Dataset, TrainConfig) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(211, 10_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 3 },
    );
    let cfg = TrainConfig { epochs: 2, minibatch_size: 64, initial_rate: 25, ..Default::default() };
    (spec, artifacts.preprocessed, test, cfg)
}

/// A fresh scratch directory under the system temp dir.
fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fae-ft-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn checkpointing(dir: PathBuf) -> ResilienceOptions {
    ResilienceOptions {
        checkpoint_dir: Some(dir),
        checkpoint_every_rounds: 1,
        ..Default::default()
    }
}

#[test]
fn resume_reproduces_uninterrupted_run_exactly() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("resume");

    // Reference: same seed, no checkpointing, never interrupted.
    let reference = train_fae(&spec, &pre, &test, &cfg);
    let total_steps = reference.hot_steps + reference.cold_steps;

    // Crash roughly a third of the way through (past the first round,
    // so at least one checkpoint exists on disk).
    let halted = train_fae_resilient(
        &spec,
        &pre,
        &test,
        &cfg,
        &ResilienceOptions {
            halt_after_steps: Some(total_steps / 3),
            ..checkpointing(dir.clone())
        },
    );
    assert!(halted.interrupted, "halted run must report interruption");
    assert!(
        latest_in(&dir).unwrap().is_some(),
        "at least one checkpoint must exist after the crash"
    );

    let resumed = train_fae_resilient(
        &spec,
        &pre,
        &test,
        &cfg,
        &ResilienceOptions { resume: true, ..checkpointing(dir) },
    );
    assert!(
        resumed
            .recoveries
            .iter()
            .any(|r| matches!(r, RecoveryAction::ResumedFromCheckpoint { .. })),
        "resume must actually restore a checkpoint, not start fresh"
    );
    assert!(!resumed.interrupted);

    // Bit-identical final state: losses, accuracy, simulated time,
    // step counts, schedule and eval history all match the
    // uninterrupted run exactly.
    assert_eq!(
        resumed.final_test.loss.to_bits(),
        reference.final_test.loss.to_bits(),
        "final test loss must be bit-identical after resume"
    );
    assert_eq!(resumed.final_test.accuracy.to_bits(), reference.final_test.accuracy.to_bits());
    assert_eq!(resumed.final_train.loss.to_bits(), reference.final_train.loss.to_bits());
    assert_eq!(
        resumed.simulated_seconds.to_bits(),
        reference.simulated_seconds.to_bits(),
        "checkpoint saves must charge zero simulated time"
    );
    assert_eq!(resumed.hot_steps, reference.hot_steps);
    assert_eq!(resumed.cold_steps, reference.cold_steps);
    assert_eq!(resumed.transitions, reference.transitions);
    assert_eq!(resumed.final_rate, reference.final_rate);
    assert_eq!(resumed.history, reference.history);
}

#[test]
fn device_loss_and_replication_failure_degrade_gracefully() {
    let (spec, pre, test, mut cfg) = setup();
    cfg.num_gpus = 4;

    let clean = train_fae(&spec, &pre, &test, &cfg);

    // Lose a device early, then fail hot replication later: the run
    // must finish (degraded), not die.
    let plan = FaultPlan::parse("device-loss@5,replication-oom@40").unwrap();
    let faulted = train_fae_resilient(
        &spec,
        &pre,
        &test,
        &cfg,
        &ResilienceOptions { plan, ..Default::default() },
    );

    assert_eq!(faulted.faults.len(), 2, "both planned faults must fire");
    assert!(
        faulted
            .recoveries
            .iter()
            .any(|r| matches!(r, RecoveryAction::ShrankReplicas { from: 4, to: 3, .. })),
        "device loss must shrink the replica group 4 -> 3: {:?}",
        faulted.recoveries
    );
    assert!(
        faulted.recoveries.iter().any(|r| matches!(r, RecoveryAction::ColdFallback { .. })),
        "replication failure must fall back to cold-only execution"
    );

    // Recovery cost is visible in the timeline. Both runs execute the
    // same number of steps, so the per-step framework overhead cancels
    // and the difference is the re-shard: communicator re-init charged
    // to Framework plus the parameter re-broadcast on AllReduce. (The
    // degraded run is not necessarily slower *overall* — cold fallback
    // also skips all later hot<->cold syncs — so total time ordering is
    // deliberately not asserted.)
    let framework_delta =
        faulted.timeline.get(Phase::Framework) - clean.timeline.get(Phase::Framework);
    assert!(
        framework_delta >= 0.74,
        "communicator re-init (0.75 s) must be charged to the framework \
         phase, got a delta of {framework_delta} s"
    );
    // After the fallback, would-be-hot batches run cold.
    assert!(faulted.hot_steps < clean.hot_steps);
    assert_eq!(
        faulted.hot_steps + faulted.cold_steps,
        clean.hot_steps + clean.cold_steps,
        "degradation must not drop or duplicate training steps"
    );
    // Still trains: numerics survive the mode changes.
    assert!(
        faulted.final_test.accuracy > 0.55,
        "degraded run must still learn, got {}",
        faulted.final_test.accuracy
    );
}

#[test]
fn sync_failure_is_retried_as_pure_cost() {
    let (spec, pre, test, cfg) = setup();

    let clean = train_fae(&spec, &pre, &test, &cfg);

    let plan = FaultPlan::parse("sync-failure@10").unwrap();
    let faulted = train_fae_resilient(
        &spec,
        &pre,
        &test,
        &cfg,
        &ResilienceOptions { plan, ..Default::default() },
    );

    assert_eq!(faulted.faults.len(), 1);
    let retried = faulted
        .recoveries
        .iter()
        .find_map(|r| match r {
            RecoveryAction::SyncRetried { attempts, waited_s, .. } => Some((*attempts, *waited_s)),
            _ => None,
        })
        .expect("sync failure must be recovered by retrying");
    assert!(retried.0 >= 2, "at least one failed attempt plus the success");
    assert!(retried.1 > 0.0, "backoff waits must be accounted");

    // The retry re-pays the sync and waits out the backoff...
    assert!(faulted.timeline.get(Phase::EmbedSync) > clean.timeline.get(Phase::EmbedSync));
    assert!(faulted.timeline.get(Phase::Framework) > clean.timeline.get(Phase::Framework));
    // ...but never touches the numerics.
    assert_eq!(
        faulted.final_test.loss.to_bits(),
        clean.final_test.loss.to_bits(),
        "sync retries are pure cost; the trained model must be unchanged"
    );
}

#[test]
fn checkpoints_written_during_training_round_trip() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("roundtrip");

    let report = train_fae_resilient(&spec, &pre, &test, &cfg, &checkpointing(dir.clone()));
    assert!(!report.interrupted);

    let path = latest_in(&dir)
        .unwrap()
        .expect("a full run with every-round checkpointing must leave files");
    let ck = TrainCheckpoint::load(&path).expect("checkpoint written mid-run must load");
    assert_eq!(ck.config_seed, cfg.seed);
    assert!(ck.steps > 0);
    // Every file in the directory is a valid checkpoint — no temp
    // residue, no torn writes.
    for entry in fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        assert!(
            TrainCheckpoint::load(&p).is_ok(),
            "stray or corrupt file left behind: {}",
            p.display()
        );
    }
}

#[test]
fn corrupted_checkpoint_falls_back_to_a_fresh_start() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("corrupt");

    let reference = train_fae(&spec, &pre, &test, &cfg);
    let total_steps = reference.hot_steps + reference.cold_steps;

    // Crash mid-run, then corrupt the newest checkpoint on disk.
    let halted = train_fae_resilient(
        &spec,
        &pre,
        &test,
        &cfg,
        &ResilienceOptions {
            halt_after_steps: Some(total_steps / 2),
            ..checkpointing(dir.clone())
        },
    );
    assert!(halted.interrupted);
    let path = latest_in(&dir).unwrap().expect("checkpoint exists");
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
    assert!(TrainCheckpoint::load(&path).is_err(), "the CRC trailer must reject the flipped byte");

    // Resume cannot trust the corrupt file; it must restart from
    // scratch and still converge to the reference bits.
    let resumed = train_fae_resilient(
        &spec,
        &pre,
        &test,
        &cfg,
        &ResilienceOptions { resume: true, ..checkpointing(dir) },
    );
    assert!(
        !resumed
            .recoveries
            .iter()
            .any(|r| matches!(r, RecoveryAction::ResumedFromCheckpoint { .. })),
        "a corrupt checkpoint must not be resumed from"
    );
    assert_eq!(
        resumed.final_test.loss.to_bits(),
        reference.final_test.loss.to_bits(),
        "fresh restart must still match the reference run"
    );
}

#[test]
fn transient_io_during_checkpointing_is_retried_and_reported() {
    let (spec, pre, test, cfg) = setup();
    let dir = tmpdir("transient-io");

    let plan = FaultPlan::parse("transient-io@0").unwrap();
    let report = train_fae_resilient(
        &spec,
        &pre,
        &test,
        &cfg,
        &ResilienceOptions { plan, ..checkpointing(dir.clone()) },
    );
    assert!(!report.interrupted, "transient I/O must not kill the run");
    let retried = report
        .recoveries
        .iter()
        .find_map(|r| match r {
            RecoveryAction::RetriedIo { attempts, waited_s } => Some((*attempts, *waited_s)),
            _ => None,
        })
        .expect("the injected I/O fault must surface as a retry recovery");
    assert!(retried.0 >= 2);
    assert!(retried.1 > 0.0);

    // Despite the flaky writes, the surviving checkpoints are valid.
    let path = latest_in(&dir).unwrap().expect("checkpoints were written");
    assert!(TrainCheckpoint::load(&path).is_ok());
}
