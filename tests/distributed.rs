//! Integration tests for multi-node training over the fae-net wire
//! protocol: the acceptance contract is that moving shard computation
//! onto worker processes changes *where* the arithmetic runs and
//! nothing else — same eval stream, same final model digest as the
//! in-process [`ParallelEngine`] with the same worker count — and that
//! a worker crash mid-run recovers (reshard + rejoin) to the same
//! digest.
//!
//! Workers here run as threads executing the same [`run_node`]
//! supervisor the `fae node` binary runs; the transport is real localhost
//! TCP either way.

use std::net::TcpListener;
use std::thread;

use fae::core::input_processor::{PreprocessConfig, Preprocessed};
use fae::core::{
    pipeline, train_fae_resilient, trainer::train_fae_with_engine, CalibratorConfig, FaultPlan,
    RecoveryAction, ResilienceOptions, TrainConfig, TrainReport,
};
use fae::data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae::net::{NetConfig, NodeConfig, RemoteEngine};

/// Shrunken calibrator budget so the tiny workload has both hot and
/// cold batches (same trick as the parallel/end-to-end suites).
fn forced_partial_calibrator() -> CalibratorConfig {
    CalibratorConfig {
        gpu_budget_bytes: 40 << 10,
        small_table_bytes: 2 << 10,
        ..Default::default()
    }
}

fn setup(workers: usize) -> (WorkloadSpec, Preprocessed, Dataset, TrainConfig) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(131, 6_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 3 },
    );
    let cfg = TrainConfig {
        epochs: 1,
        minibatch_size: 64,
        initial_rate: 25,
        workers,
        ..Default::default()
    };
    (spec, artifacts.preprocessed, test, cfg)
}

/// Trains over real localhost TCP: `workers` node threads against a
/// [`RemoteEngine`] coordinator. `worker_plan` is handed to every node
/// (each derives deterministically whether it is a crash victim);
/// `coordinator_plan` drives the coordinator's own fault bookkeeping
/// and must be the same plan for the two sides to agree.
fn train_distributed(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
    workers: usize,
    plan: &FaultPlan,
) -> TrainReport {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handles: Vec<_> = (0..workers)
        .map(|k| {
            let node = NodeConfig {
                addr: addr.clone(),
                node_id: k as u32,
                workers: workers as u32,
                net: NetConfig::default(),
                plan: plan.clone(),
            };
            thread::spawn(move || fae::net::run_node(node))
        })
        .collect();
    let seed = cfg.seed;
    let num_gpus = cfg.num_gpus;
    let coordinator_plan = plan.clone();
    let report =
        train_fae_with_engine(spec, pre, test, cfg, &ResilienceOptions::default(), move |model| {
            RemoteEngine::new(
                model,
                spec,
                seed,
                workers,
                num_gpus,
                listener,
                NetConfig::default(),
                coordinator_plan,
            )
            .expect("coordinator start")
        });
    for h in handles {
        h.join().expect("node thread").expect("node exit");
    }
    report
}

#[test]
fn two_remote_workers_match_the_in_process_engine_bit_for_bit() {
    let (spec, pre, test, cfg) = setup(2);
    let local = train_fae_resilient(&spec, &pre, &test, &cfg, &ResilienceOptions::default());
    let remote = train_distributed(&spec, &pre, &test, &cfg, 2, &FaultPlan::default());

    assert_eq!(
        local.model_digest, remote.model_digest,
        "distributed training must be bit-identical to the in-process engine"
    );
    assert_eq!(local.history.len(), remote.history.len());
    for (a, b) in local.history.iter().zip(&remote.history) {
        assert_eq!(a.test_loss.to_bits(), b.test_loss.to_bits(), "eval loss bits diverged");
    }
    assert_eq!(local.hot_steps, remote.hot_steps);
    assert_eq!(local.cold_steps, remote.cold_steps);
}

#[test]
fn a_crashed_worker_is_reshard_around_and_rejoins_to_the_same_digest() {
    let (spec, pre, test, cfg) = setup(2);
    let local = train_fae_resilient(&spec, &pre, &test, &cfg, &ResilienceOptions::default());

    let plan = FaultPlan::parse_seeded("worker-crash@6", 41).expect("plan");
    let remote = train_distributed(&spec, &pre, &test, &cfg, 2, &plan);

    assert!(
        remote.recoveries.iter().any(|r| matches!(r, RecoveryAction::ReshardedToSurvivors { .. })),
        "the coordinator must reshard around the crashed worker, got {:?}",
        remote.recoveries
    );
    assert!(
        remote.recoveries.iter().any(|r| matches!(r, RecoveryAction::NodeRejoined { .. })),
        "the crashed worker must rejoin, got {:?}",
        remote.recoveries
    );
    assert_eq!(
        local.model_digest, remote.model_digest,
        "crash + reshard + rejoin must not change a single bit of the model"
    );
    assert!(!remote.faults.is_empty(), "the injected crash must be reported");
}

#[test]
fn a_partition_near_the_end_reshards_and_every_node_exits_cleanly() {
    // A net-partition severs the victim's socket late enough in the run
    // that the coordinator often finishes before the victim can rejoin.
    // The victim must then observe the closed listener and exit cleanly
    // (run over, not an error) — and the digest must still match the
    // in-process engine, rejoin or no rejoin. `train_distributed`
    // asserts the clean exit via each node thread's `Result`.
    let (spec, pre, test, cfg) = setup(2);
    let local = train_fae_resilient(&spec, &pre, &test, &cfg, &ResilienceOptions::default());

    let plan = FaultPlan::parse_seeded("net-partition@20", 7).expect("plan");
    let remote = train_distributed(&spec, &pre, &test, &cfg, 2, &plan);

    assert!(
        remote.recoveries.iter().any(|r| matches!(r, RecoveryAction::ReshardedToSurvivors { .. })),
        "the coordinator must reshard around the partitioned worker, got {:?}",
        remote.recoveries
    );
    assert_eq!(
        local.model_digest, remote.model_digest,
        "partition + reshard must not change a single bit of the model"
    );
    assert!(!remote.faults.is_empty(), "the injected partition must be reported");
}

#[test]
fn a_single_remote_worker_matches_the_serial_fast_path() {
    let (spec, pre, test, cfg) = setup(1);
    let local = train_fae_resilient(&spec, &pre, &test, &cfg, &ResilienceOptions::default());
    let remote = train_distributed(&spec, &pre, &test, &cfg, 1, &FaultPlan::default());
    assert_eq!(local.model_digest, remote.model_digest);
}
