//! Acceptance gates for the distributed observability plane: journal
//! shipping over the wire, the cross-node merge's exactly-once property
//! under hostile delivery (duplicated / torn / out-of-order batches),
//! the merged per-phase time-accounting invariant on a real 2-node
//! crash run, the heartbeat-gap alert that run must fire, and byte
//! determinism of the merged Perfetto trace for a fixed seed.

use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::thread;

use fae::core::input_processor::{PreprocessConfig, Preprocessed};
use fae::core::{
    pipeline, trainer::train_fae_with_engine, CalibratorConfig, FaultPlan, ResilienceOptions,
    TrainConfig, TrainReport,
};
use fae::data::{generate, Dataset, GenOptions, WorkloadSpec};
use fae::net::{NetConfig, NodeConfig, RemoteEngine};
use fae::telemetry::{
    check_invariant, merge_tagged, merged_chrome_trace, parse_tagged_journal, read_tagged_journal,
    AlertEngine, JournalEvent, PhaseSeconds, StepMode, TaggedEvent, Telemetry,
};

/// Shrunken budget so the tiny workload actually splits hot/cold.
fn forced_partial_calibrator() -> CalibratorConfig {
    CalibratorConfig {
        gpu_budget_bytes: 40 << 10,
        small_table_bytes: 2 << 10,
        ..Default::default()
    }
}

fn setup(workers: usize) -> (WorkloadSpec, Preprocessed, Dataset, TrainConfig) {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(131, 6_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 3 },
    );
    let cfg = TrainConfig {
        epochs: 1,
        minibatch_size: 64,
        initial_rate: 25,
        workers,
        ..Default::default()
    };
    (spec, artifacts.preprocessed, test, cfg)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fae-obs-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A distributed run with the observability plane on: worker node
/// threads against a [`RemoteEngine`] coordinator whose telemetry
/// journals to `journal` and evaluates `alerts`. Returns the report and
/// the telemetry handle (journal + shipped sidecars live on disk).
#[allow(clippy::too_many_arguments)] // test harness: mirrors the CLI surface
fn train_distributed_observed(
    spec: &WorkloadSpec,
    pre: &Preprocessed,
    test: &Dataset,
    cfg: &TrainConfig,
    workers: usize,
    plan: &FaultPlan,
    journal: &Path,
    alerts: AlertEngine,
) -> (TrainReport, Telemetry) {
    let telem = Telemetry::builder()
        .journal_path(journal)
        .alerts(alerts)
        .retain_events(true)
        .try_build()
        .expect("telemetry");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handles: Vec<_> = (0..workers)
        .map(|k| {
            let node = NodeConfig {
                addr: addr.clone(),
                node_id: k as u32,
                workers: workers as u32,
                net: NetConfig::default(),
                plan: plan.clone(),
            };
            thread::spawn(move || fae::net::run_node(node))
        })
        .collect();
    let seed = cfg.seed;
    let num_gpus = cfg.num_gpus;
    let coordinator_plan = plan.clone();
    let opts = ResilienceOptions { telemetry: telem.clone(), ..Default::default() };
    let report = train_fae_with_engine(spec, pre, test, cfg, &opts, move |model| {
        RemoteEngine::new(
            model,
            spec,
            seed,
            workers,
            num_gpus,
            listener,
            NetConfig::default(),
            coordinator_plan,
        )
        .expect("coordinator start")
    });
    for h in handles {
        h.join().expect("node thread").expect("node exit");
    }
    (report, telem)
}

/// Reads the coordinator journal plus every shipped sidecar and merges.
fn merged_from_disk(journal: &Path, telem: &Telemetry) -> Vec<TaggedEvent> {
    let mut streams = vec![read_tagged_journal(journal).expect("coordinator journal parses")];
    for sidecar in telem.sidecar_paths() {
        streams.push(read_tagged_journal(&sidecar).expect("sidecar parses"));
    }
    merge_tagged(&streams).0
}

// ---------------------------------------------------------------------
// Exactly-once merge under hostile delivery (seeded property test).
// ---------------------------------------------------------------------

/// Deterministic splitmix-style generator; no ambient randomness in
/// tests either.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tag(node_id: u64, seq: u64, event: JournalEvent) -> TaggedEvent {
    TaggedEvent { node_id, seq, event }
}

fn synthetic_truth() -> Vec<Vec<TaggedEvent>> {
    let step = |s: u64, secs: f64| JournalEvent::Step {
        step: s,
        mode: StepMode::Hot,
        rate: 50,
        loss: 0.5,
        phases: PhaseSeconds([secs, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
    };
    let mark = |s: u64, label: &str| JournalEvent::Mark {
        step: s,
        label: label.into(),
        detail: String::new(),
    };
    let coordinator: Vec<TaggedEvent> = (0..40).map(|i| tag(0, i, step(i + 1, 0.125))).collect();
    let w1: Vec<TaggedEvent> = (0..9).map(|i| tag(1, i, mark(4 * i + 2, "task"))).collect();
    let w2: Vec<TaggedEvent> = (0..9).map(|i| tag(2, i, mark(4 * i + 3, "task"))).collect();
    vec![coordinator, w1, w2]
}

#[test]
fn merge_is_exactly_once_under_duplicated_torn_and_out_of_order_batches() {
    let truth = synthetic_truth();
    let (want, want_stats) = merge_tagged(&truth);
    assert_eq!(want_stats.duplicates, 0);
    assert_eq!(want_stats.nodes, vec![0, 1, 2]);

    for seed in 0..32u64 {
        let mut rng = seed;
        // Chop every stream into batches that resend from a random
        // earlier cursor (the worker's resend-from-ack behaviour under
        // retries), so batches overlap and duplicate.
        let mut batches: Vec<Vec<TaggedEvent>> = Vec::new();
        for stream in &truth {
            let mut sent = 0usize;
            while sent < stream.len() {
                let resend_from = (next_rand(&mut rng) as usize) % (sent + 1);
                let len = 1 + (next_rand(&mut rng) as usize) % 7;
                let end = (resend_from + len.max(sent - resend_from + 1)).min(stream.len());
                batches.push(stream[resend_from..end].to_vec());
                sent = sent.max(end);
            }
            // One full duplicate delivery of the whole stream.
            if next_rand(&mut rng).is_multiple_of(2) {
                batches.push(stream.clone());
            }
        }
        // Deliver the batches in a shuffled order, some internally
        // reversed (out-of-order inside the batch too).
        for i in (1..batches.len()).rev() {
            let j = (next_rand(&mut rng) as usize) % (i + 1);
            batches.swap(i, j);
        }
        for b in batches.iter_mut() {
            if next_rand(&mut rng).is_multiple_of(3) {
                b.reverse();
            }
        }

        let (got, stats) = merge_tagged(&batches);
        assert_eq!(got, want, "seed {seed}: merged stream drifted");
        assert_eq!(stats.total, want.len(), "seed {seed}: exactly-once violated");
        assert_eq!(stats.nodes, vec![0, 1, 2]);
    }
}

#[test]
fn a_torn_final_line_is_dropped_and_the_tail_recovers_on_the_next_delivery() {
    let truth = synthetic_truth();
    let full: String = truth[1].iter().map(|t| format!("{}\n", t.to_line())).collect();
    // Tear the file mid-way through its final line (a crash during a
    // sidecar append); parsing must keep every complete line.
    let torn = &full[..full.len() - 7];
    let parsed = parse_tagged_journal(torn).expect("torn journal still parses");
    assert_eq!(parsed.len(), truth[1].len() - 1, "only the torn line is dropped");
    // A later full delivery restores the missing event exactly once.
    let (merged, stats) = merge_tagged(&[parsed, truth[1].clone()]);
    assert_eq!(merged, truth[1]);
    assert_eq!(stats.total, truth[1].len());
}

// ---------------------------------------------------------------------
// The real 2-node crash run: shipped journals, merged invariant, alert.
// ---------------------------------------------------------------------

#[test]
fn crash_run_ships_journals_merges_within_tolerance_and_fires_the_gap_alert() {
    let (spec, pre, test, cfg) = setup(2);
    let dir = tmpdir("crash");
    let journal = dir.join("run.jsonl");
    let plan = FaultPlan::parse_seeded("worker-crash@6", 41).expect("plan");
    let alerts = AlertEngine::parse("heartbeat-gap>0").expect("rules");
    let (report, telem) =
        train_distributed_observed(&spec, &pre, &test, &cfg, 2, &plan, &journal, alerts);

    // Both workers shipped journal lines into per-node sidecars.
    let sidecars = telem.sidecar_paths();
    assert_eq!(sidecars.len(), 2, "one sidecar per wire worker: {sidecars:?}");

    // The merged stream carries all three nodes and satisfies the
    // per-phase time-accounting invariant against the run's own report.
    let merged = merged_from_disk(&journal, &telem);
    let inv = check_invariant(&merged).expect("merged invariant holds");
    assert_eq!(inv.reported, Some(report.simulated_seconds));
    assert!(
        (inv.global - report.simulated_seconds).abs() <= 1e-6,
        "merged phase sum {} vs reported {}",
        inv.global,
        report.simulated_seconds
    );
    let nodes: Vec<u64> = inv.per_node.iter().map(|(n, _)| *n).collect();
    assert_eq!(nodes, vec![0, 1, 2], "all three nodes present in the merge");
    for (node, charged) in &inv.per_node {
        if *node != 0 {
            assert_eq!(*charged, 0.0, "worker {node} marks must charge nothing");
        }
    }

    // The crash surfaced as a worker-side mark and a heartbeat-gap
    // alert in the coordinator journal.
    assert!(
        merged.iter().any(|t| {
            t.node_id != 0
                && matches!(&t.event, JournalEvent::Mark { label, .. } if label == "crash-inject")
        }),
        "the victim's crash mark must ship"
    );
    let fired: Vec<&TaggedEvent> = merged
        .iter()
        .filter(|t| matches!(&t.event, JournalEvent::Alert { rule, .. } if rule == "heartbeat-gap"))
        .collect();
    assert!(!fired.is_empty(), "heartbeat-gap>0 must fire on the injected crash");

    // The merged trace groups each node under its own process.
    let trace = merged_chrome_trace(&merged).expect("trace export");
    for name in ["fae-simulated-timeline", "fae-node0", "fae-node1"] {
        assert!(trace.contains(name), "merged trace missing track group {name}");
    }
}

#[test]
fn clean_two_node_merged_trace_is_byte_identical_for_a_fixed_seed() {
    let (spec, pre, test, cfg) = setup(2);
    let mut traces = Vec::new();
    for round in 0..2 {
        let dir = tmpdir(&format!("golden-{round}"));
        let journal = dir.join("run.jsonl");
        let (_, telem) = train_distributed_observed(
            &spec,
            &pre,
            &test,
            &cfg,
            2,
            &FaultPlan::default(),
            &journal,
            AlertEngine::empty(),
        );
        traces
            .push(merged_chrome_trace(&merged_from_disk(&journal, &telem)).expect("trace export"));
    }
    assert_eq!(traces[0], traces[1], "merged Perfetto export must be byte-identical");
}
