//! Shape-level assertions for every table and figure of the paper's
//! evaluation (§IV) plus the design figures of §II–III: who wins, by
//! roughly what factor, and where crossovers fall. The regenerating
//! harness binaries live in `fae-bench`; these tests pin the shapes in CI.

use fae::core::calibrator::log_accesses;
use fae::core::input_processor::all_hot_minibatch_probability;
use fae::core::scheduler::Rate;
use fae::core::simsched::{simulate_baseline, simulate_fae, simulate_uvm, SimConfig};
use fae::core::RandEmBox;
use fae::data::{generate, GenOptions, WorkloadSpec};
use fae::models::bridge::profile_for;
use fae::sysmodel::power::average_gpu_power;
use fae::sysmodel::Phase;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kaggle_sim(gpus: usize, hot: f64, per_gpu_batch: usize) -> SimConfig {
    SimConfig {
        total_inputs: WorkloadSpec::rmc2_kaggle_paper().num_inputs,
        batch: per_gpu_batch * gpus,
        hot_fraction: hot,
        rate: Rate::new(50),
        epochs: 1,
        num_gpus: gpus,
    }
}

#[test]
fn fig02_hot_portion_is_tiny_but_captures_most_accesses() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 60_000;
    let ds = generate(&spec, &GenOptions::seeded(1));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);
    // Largest table: rows with >= 3 accesses.
    let c = &counters[0];
    let hot_rows = c.rows_at_or_above(3);
    let share = c.access_share_at_or_above(3);
    assert!(
        (hot_rows as f64) < 0.2 * c.rows() as f64,
        "hot rows {hot_rows} not a small fraction of {}",
        c.rows()
    );
    assert!(share > 0.75, "hot rows capture only {share} (paper: 75-92%)");
}

#[test]
fn fig04_random_minibatch_hot_probability_collapses() {
    assert!(all_hot_minibatch_probability(0.99, 1) > 0.98);
    assert!(all_hot_minibatch_probability(0.99, 256) < 0.1);
    assert!(all_hot_minibatch_probability(0.99, 1024) < 1e-4);
}

#[test]
fn fig06_threshold_knob_tradeoff() {
    let mut spec = WorkloadSpec::rmc2_kaggle();
    spec.num_inputs = 40_000;
    let ds = generate(&spec, &GenOptions::seeded(2));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);
    // Hot-row count grows monotonically as the threshold falls.
    let mut prev = 0usize;
    for cutoff in [20u64, 10, 5, 2, 1] {
        let hot: usize = counters.iter().map(|c| c.rows_at_or_above(cutoff)).sum();
        assert!(hot >= prev, "hot rows shrank as cutoff fell");
        prev = hot;
    }
}

#[test]
fn fig09_randem_within_ten_percent() {
    let mut spec = WorkloadSpec::rmc3_terabyte();
    spec.num_inputs = 60_000;
    let ds = generate(&spec, &GenOptions::seeded(3));
    let all: Vec<usize> = (0..ds.len()).collect();
    let counters = log_accesses(&ds, &all);
    let c = &counters[0];
    let mut rng = StdRng::seed_from_u64(4);
    for cutoff in [1u64, 2, 4] {
        let exact = c.rows_at_or_above(cutoff) as f64;
        let est = RandEmBox::default().estimate(c, cutoff, &mut rng);
        assert!(
            (est.hot_rows - exact).abs() / exact.max(1.0) < 0.10,
            "cutoff {cutoff}: estimate {} vs exact {exact}",
            est.hot_rows
        );
        assert!(est.rows_scanned < c.rows() / 10);
    }
}

#[test]
fn fig13_table4_speedups_in_paper_band() {
    // Paper: 2.34x average at 4 GPUs; per-workload 1.6-2.6x.
    let profile = profile_for(&WorkloadSpec::rmc2_kaggle_paper(), 256e6);
    for gpus in [1usize, 2, 4] {
        let cfg = kaggle_sim(gpus, 0.85, 1024);
        let base = simulate_baseline(&profile, &cfg).total();
        let fae = simulate_fae(&profile, &cfg).total();
        let s = base / fae;
        assert!((1.5..3.5).contains(&s), "{gpus} GPUs: speedup {s:.2} out of band");
    }
    // Baseline multi-GPU scaling is poor (Table IV: Kaggle 245→195→201):
    // 4 GPUs must NOT be ~4x faster than 1.
    let b1 = simulate_baseline(&profile, &kaggle_sim(1, 0.85, 1024)).total();
    let b4 = simulate_baseline(&profile, &kaggle_sim(4, 0.85, 1024)).total();
    let scaling = b1 / b4;
    assert!((1.0..2.2).contains(&scaling), "baseline 4-GPU scaling {scaling:.2}");
}

#[test]
fn fig14_optimizer_dominates_baseline_and_fae_removes_transfer() {
    let profile = profile_for(&WorkloadSpec::rmc2_kaggle_paper(), 256e6);
    let cfg = kaggle_sim(4, 0.85, 1024);
    let base = simulate_baseline(&profile, &cfg);
    let fae = simulate_fae(&profile, &cfg);
    // "The optimizer time is a large portion of the baseline execution."
    assert!(base.get(Phase::Optimizer) > 0.2 * base.total());
    // Table V: FAE slashes CPU-GPU communication.
    assert!(fae.cpu_gpu_comm() < 0.5 * base.cpu_gpu_comm());
    // FAE pays an embed-sync overhead the baseline does not have.
    assert!(fae.get(Phase::EmbedSync) > 0.0);
    assert_eq!(base.get(Phase::EmbedSync), 0.0);
}

#[test]
fn fig15_speedup_grows_with_minibatch() {
    let profile = profile_for(&WorkloadSpec::rmc2_kaggle_paper(), 256e6);
    let mut last = 0.0;
    for batch in [1024usize, 4096, 16384, 32768] {
        let cfg = SimConfig { batch, ..kaggle_sim(1, 0.85, 1024) };
        let s = simulate_baseline(&profile, &cfg).total() / simulate_fae(&profile, &cfg).total();
        assert!(s > last, "speedup fell at batch {batch}");
        last = s;
    }
    assert!(last > 3.5, "large-batch speedup {last:.2} (paper: up to 4.7x)");
}

#[test]
fn table6_fae_draws_less_gpu_power() {
    for spec in [WorkloadSpec::rmc2_kaggle_paper(), WorkloadSpec::rmc3_terabyte_paper()] {
        let profile = profile_for(&spec, 256e6);
        let cfg = SimConfig {
            total_inputs: spec.num_inputs,
            batch: 1024,
            hot_fraction: 0.85,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: 1,
        };
        let p_base = average_gpu_power(&simulate_baseline(&profile, &cfg));
        let p_fae = average_gpu_power(&simulate_fae(&profile, &cfg));
        let red = (p_base - p_fae) / p_base;
        assert!(
            (0.02..0.25).contains(&red),
            "{}: power reduction {red:.3} out of band (paper: 5.3-8.8%)",
            spec.name
        );
        assert!((52.0..70.0).contains(&p_base), "baseline power {p_base} W implausible");
    }
}

#[test]
fn nvopt_fae_beats_cache_comparator_on_terabyte() {
    let spec = WorkloadSpec::rmc3_terabyte_paper();
    let profile = profile_for(&spec, 256e6);
    let cfg = SimConfig {
        total_inputs: spec.num_inputs,
        batch: 32 * 1024,
        hot_fraction: 0.85,
        rate: Rate::new(50),
        epochs: 1,
        num_gpus: 1,
    };
    let fae = simulate_fae(&profile, &cfg).total();
    let uvm = simulate_uvm(&profile, &cfg, 0.85).total();
    let ratio = uvm / fae;
    assert!((1.1..2.5).contains(&ratio), "FAE vs NvOPT-style ratio {ratio:.2} (paper: 1.48x)");
}

#[test]
fn taobao_gains_least_from_more_gpus() {
    // Table IV: Taobao's FAE barely improves (even regresses) with GPU
    // count because host-side sequence work scales with the global batch.
    let spec = WorkloadSpec::rmc1_taobao_paper();
    let profile = profile_for(&spec, 256e6);
    let time = |gpus: usize| {
        let cfg = SimConfig {
            total_inputs: spec.num_inputs,
            batch: 256 * gpus,
            hot_fraction: 0.75,
            rate: Rate::new(50),
            epochs: 1,
            num_gpus: gpus,
        };
        simulate_fae(&profile, &cfg).total()
    };
    let (t1, t4) = (time(1), time(4));
    assert!(t4 > 0.8 * t1, "Taobao FAE should gain little from 4 GPUs: {t4:.0}s vs {t1:.0}s");
}

#[test]
fn uniform_control_defeats_fae_as_it_should() {
    // Falsifiability: on a near-uniform workload with no popularity
    // correlation, the calibrator finds no usable hot set, almost no
    // inputs are jointly hot, and FAE degenerates to the baseline.
    use fae::core::calibrator::{log_accesses, sample_inputs};
    use fae::core::classifier::classify_tables;
    use fae::core::input_processor::classify_inputs;
    use fae::core::{Calibrator, CalibratorConfig};

    let mut spec = WorkloadSpec::uniform_control();
    spec.num_inputs = 60_000;
    let ds = generate(&spec, &GenOptions::seeded(71));
    let calibrator = Calibrator::new(CalibratorConfig {
        gpu_budget_bytes: 1 << 20,
        small_table_bytes: 16 << 10,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(calibrator.config.seed);
    let samples = sample_inputs(&ds, calibrator.config.sample_rate, &mut rng);
    let counters = log_accesses(&ds, &samples);
    let cal = calibrator.converge(&ds, &counters, &mut rng);
    let parts = classify_tables(&spec, &counters, &cal);
    let hot_frac =
        classify_inputs(&ds, &parts).iter().filter(|&&h| h).count() as f64 / ds.len() as f64;
    assert!(hot_frac < 0.05, "uniform workload should have ~no hot inputs: {hot_frac}");

    // And the simulated speedup collapses towards 1x.
    let profile = profile_for(&spec, 1e6);
    let cfg = SimConfig {
        total_inputs: spec.num_inputs,
        batch: 512,
        hot_fraction: hot_frac,
        rate: Rate::new(50),
        epochs: 1,
        num_gpus: 1,
    };
    let s = simulate_baseline(&profile, &cfg).total() / simulate_fae(&profile, &cfg).total();
    assert!(s < 1.15, "uniform workload should yield ~no speedup: {s:.2}");
}
