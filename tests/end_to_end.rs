//! Cross-crate integration tests: the full FAE pipeline from dataset
//! synthesis through calibration, classification, preprocessing, disk
//! round-trip and training — the flow of the paper's Fig 5.

use fae::core::calibrator::{log_accesses, sample_inputs};
use fae::core::classifier::classify_tables;
use fae::core::input_processor::{preprocess_inputs, PreprocessConfig};
use fae::core::{pipeline, train_baseline, train_fae, CalibratorConfig, TrainConfig};
use fae::data::format::FaeFile;
use fae::data::{generate, BatchKind, GenOptions, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn forced_partial_calibrator() -> CalibratorConfig {
    // tiny-test tables are all under 1 MB; shrink the small-table rule so
    // the threshold path is actually exercised.
    CalibratorConfig {
        gpu_budget_bytes: 40 << 10,
        small_table_bytes: 2 << 10,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_produces_pure_batches_and_trains() {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(101, 10_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 1 },
    );
    let pre = &artifacts.preprocessed;
    assert!(pre.hot_input_fraction > 0.3 && pre.hot_input_fraction < 0.99);
    assert!(!pre.hot_batches.is_empty() && !pre.cold_batches.is_empty());
    // Purity invariant across the whole stream.
    for b in &pre.hot_batches {
        for (t, csr) in b.sparse.iter().enumerate() {
            assert!(csr.indices.iter().all(|&i| pre.partitions[t].is_hot(i)));
        }
    }
    // Coverage invariant: no sample lost or duplicated.
    assert_eq!(pre.total_samples(), train.len());

    let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
    let fae = train_fae(&spec, pre, &test, &cfg);
    assert!(fae.hot_steps > 0 && fae.cold_steps > 0);
    assert!(fae.final_test.accuracy > 0.55, "accuracy {}", fae.final_test.accuracy);
}

#[test]
fn fae_matches_baseline_accuracy_and_beats_its_time() {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(103, 12_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 2 },
    );
    let cfg = TrainConfig { epochs: 2, minibatch_size: 64, ..Default::default() };
    let base = train_baseline(&spec, &train, &test, &cfg);
    let fae = train_fae(&spec, &artifacts.preprocessed, &test, &cfg);
    // Table III: accuracy parity.
    assert!(
        (base.final_test.accuracy - fae.final_test.accuracy).abs() < 0.025,
        "accuracy gap: base {} vs fae {}",
        base.final_test.accuracy,
        fae.final_test.accuracy
    );
    // Fig 13: FAE wins on time.
    assert!(fae.simulated_seconds < base.simulated_seconds);
    // Table VI: FAE draws less GPU power.
    assert!(fae.avg_gpu_power_w < base.avg_gpu_power_w);
}

#[test]
fn preprocessed_stream_survives_disk_round_trip_and_trains_identically() {
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(107, 8_000));
    let (train, test) = ds.split(0.25);
    let artifacts = pipeline::prepare(
        &train,
        forced_partial_calibrator(),
        &PreprocessConfig { minibatch_size: 64, seed: 3 },
    );
    let path = std::env::temp_dir().join("fae-e2e-roundtrip.fae");
    artifacts.preprocessed.to_fae_file(&spec.name).write_file(&path).expect("write");
    let reloaded = FaeFile::read_file(&path).expect("read");
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.workload, spec.name);
    assert_eq!(reloaded.hot_count(), artifacts.preprocessed.hot_batches.len());
    assert_eq!(reloaded.cold_count(), artifacts.preprocessed.cold_batches.len());

    // Rebuild a Preprocessed from disk and verify training matches the
    // in-memory stream exactly (same seeds, same batches).
    let (hot, cold): (Vec<_>, Vec<_>) =
        reloaded.batches.into_iter().partition(|b| b.kind == BatchKind::Hot);
    let from_disk = fae::core::Preprocessed {
        hot_batches: hot,
        cold_batches: cold,
        hot_input_fraction: artifacts.preprocessed.hot_input_fraction,
        partitions: artifacts.preprocessed.partitions.clone(),
    };
    let cfg = TrainConfig { epochs: 1, minibatch_size: 64, ..Default::default() };
    let a = train_fae(&spec, &artifacts.preprocessed, &test, &cfg);
    let b = train_fae(&spec, &from_disk, &test, &cfg);
    assert_eq!(a.final_test.accuracy, b.final_test.accuracy);
    assert_eq!(a.final_test.loss, b.final_test.loss);
}

#[test]
fn calibrator_components_compose_manually() {
    // Drive the calibrator's pieces by hand (as the figure harnesses do)
    // and verify they agree with the packaged pipeline.
    let spec = WorkloadSpec::tiny_test();
    let ds = generate(&spec, &GenOptions::sized(109, 10_000));
    let cfg = forced_partial_calibrator();
    let calibrator = fae::core::Calibrator::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let samples = sample_inputs(&ds, cfg.sample_rate, &mut rng);
    let counters = log_accesses(&ds, &samples);
    let cal = calibrator.converge(&ds, &counters, &mut rng);
    let parts = classify_tables(&spec, &counters, &cal);
    let pre = preprocess_inputs(&ds, parts, &PreprocessConfig { minibatch_size: 64, seed: 4 });

    let packaged = pipeline::prepare(&ds, cfg, &PreprocessConfig { minibatch_size: 64, seed: 4 });
    assert_eq!(cal.threshold, packaged.calibration.threshold);
    assert_eq!(pre.hot_batches.len(), packaged.preprocessed.hot_batches.len());
    assert_eq!(pre.cold_batches.len(), packaged.preprocessed.cold_batches.len());
}

#[test]
fn tbsm_pipeline_end_to_end() {
    let mut spec = WorkloadSpec::rmc1_taobao();
    spec.tables[0].rows = 3_000;
    spec.tables[1].rows = 150;
    spec.tables[2].rows = 800;
    let ds = generate(&spec, &GenOptions::sized(113, 6_000));
    let (train, test) = ds.split(0.2);
    let artifacts = pipeline::prepare(
        &train,
        CalibratorConfig {
            gpu_budget_bytes: 80 << 10,
            small_table_bytes: 2 << 10,
            ..Default::default()
        },
        &PreprocessConfig { minibatch_size: 64, seed: 5 },
    );
    let cfg = TrainConfig { epochs: 1, minibatch_size: 64, lr: 0.03, ..Default::default() };
    let r = train_fae(&spec, &artifacts.preprocessed, &test, &cfg);
    assert!(r.final_test.accuracy > 0.5, "TBSM accuracy {}", r.final_test.accuracy);
    assert!(r.final_test.loss.is_finite());
}
